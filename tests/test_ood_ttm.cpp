// Unit tests for OOD detection (Algorithm 1 lines 1-2) and the test-time
// model / ensemble weighting (Sec 3.6, Eq. 3).

#include "core/ood.hpp"
#include "core/test_time_model.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

// ----- OodDetector -----

TEST(Ood, ThresholdValidation) {
  EXPECT_THROW(OodDetector(1.5), std::invalid_argument);
  EXPECT_THROW(OodDetector(-1.5), std::invalid_argument);
  OodDetector d(0.5);
  EXPECT_THROW(d.set_delta_star(2.0), std::invalid_argument);
  d.set_delta_star(0.7);
  EXPECT_DOUBLE_EQ(d.delta_star(), 0.7);
}

TEST(Ood, FlagsBelowThreshold) {
  const OodDetector d(0.65);
  const std::vector<double> sims{0.2, 0.5, 0.64};
  const OodVerdict v = d.evaluate(sims);
  EXPECT_TRUE(v.is_ood);
  EXPECT_DOUBLE_EQ(v.max_similarity, 0.64);
  EXPECT_EQ(v.best_domain, 2u);
}

TEST(Ood, PassesAtOrAboveThreshold) {
  const OodDetector d(0.65);
  const std::vector<double> sims{0.1, 0.65};
  EXPECT_FALSE(d.evaluate(sims).is_ood);  // δ_max == δ* is in-distribution
}

TEST(Ood, EmptySimilaritiesThrow) {
  const OodDetector d(0.5);
  EXPECT_THROW((void)d.evaluate(std::vector<double>{}), std::invalid_argument);
}

TEST(Ood, ThresholdMonotonicity) {
  // Raising δ* can only turn in-distribution verdicts into OOD, never the
  // other way.
  const std::vector<double> sims{0.3, 0.55};
  bool was_ood = false;
  for (double t = 0.0; t <= 1.0; t += 0.05) {
    const bool now = OodDetector(t).evaluate(sims).is_ood;
    EXPECT_TRUE(!was_ood || now) << "monotonicity violated at " << t;
    was_ood = now;
  }
}

// ----- ensemble_weights -----

TEST(EnsembleWeights, OodUsesAllDomains) {
  const std::vector<double> sims{0.3, 0.5, 0.1};
  const auto w = ensemble_weights(sims, 0.65, /*is_ood=*/true,
                                  WeightMode::kRawSimilarity);
  EXPECT_EQ(w, sims);  // Eq. 3 verbatim
}

TEST(EnsembleWeights, InDistributionDropsDissimilar) {
  const std::vector<double> sims{0.3, 0.7, 0.66};
  const auto w = ensemble_weights(sims, 0.65, /*is_ood=*/false,
                                  WeightMode::kRawSimilarity);
  EXPECT_DOUBLE_EQ(w[0], 0.0);  // below δ*
  EXPECT_DOUBLE_EQ(w[1], 0.7);
  EXPECT_DOUBLE_EQ(w[2], 0.66);
}

TEST(EnsembleWeights, ClampedRemovesNegatives) {
  const std::vector<double> sims{-0.2, 0.4};
  const auto w = ensemble_weights(sims, 0.65, true,
                                  WeightMode::kClampedSimilarity);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 0.4);
}

TEST(EnsembleWeights, SoftmaxNormalizedAndOrdered) {
  const std::vector<double> sims{0.2, 0.6, 0.4};
  const auto w = ensemble_weights(sims, 0.0, true, WeightMode::kSoftmax);
  double sum = 0.0;
  for (const double x : w) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(w[1], w[2]);
  EXPECT_GT(w[2], w[0]);
}

TEST(EnsembleWeights, SoftmaxRespectsInDistributionDrop) {
  const std::vector<double> sims{0.3, 0.7, 0.8};
  const auto w = ensemble_weights(sims, 0.65, false, WeightMode::kSoftmax);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_NEAR(w[1] + w[2], 1.0, 1e-9);
}

TEST(EnsembleWeights, TopOneWinnerTakeAll) {
  const std::vector<double> sims{0.3, 0.9, 0.5};
  const auto w = ensemble_weights(sims, 0.65, false, WeightMode::kTopOne);
  EXPECT_DOUBLE_EQ(w[0], 0.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
}

TEST(EnsembleWeights, DegenerateAllZeroFallsBackToUniform) {
  const std::vector<double> sims{-0.5, -0.7};
  const auto w = ensemble_weights(sims, 0.65, true,
                                  WeightMode::kClampedSimilarity);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 1.0);
}

// ----- TestTimeModel & EnsembleEvaluator -----

class TtmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = separable_hv_dataset(3, 2, 25, 512, 0.4, 0.6);
    for (int d = 0; d < 2; ++d) {
      auto model = std::make_unique<OnlineHDClassifier>(3, 512);
      OnlineHDConfig cfg;
      cfg.epochs = 5;
      model->fit(data_.select(data_.indices_of_domain(d)), cfg);
      models_.push_back(std::move(model));
    }
    ptrs_ = {models_[0].get(), models_[1].get()};
  }

  HvDataset data_{512};
  std::vector<std::unique_ptr<OnlineHDClassifier>> models_;
  std::vector<const OnlineHDClassifier*> ptrs_;
};

TEST_F(TtmTest, MaterializedEnsembleIsWeightedSum) {
  const std::vector<double> w{0.25, 0.75};
  const TestTimeModel ttm(ptrs_, w);
  for (int c = 0; c < 3; ++c) {
    Hypervector expected(512);
    expected.add_scaled(models_[0]->class_vector(c), 0.25f);
    expected.add_scaled(models_[1]->class_vector(c), 0.75f);
    EXPECT_EQ(ttm.class_vector(c), expected);
  }
}

TEST_F(TtmTest, ArityMismatchThrows) {
  const std::vector<double> w{1.0};
  EXPECT_THROW(TestTimeModel(ptrs_, w), std::invalid_argument);
}

TEST_F(TtmTest, EvaluatorMatchesMaterializedArgmax) {
  // The Gram-matrix fast path must agree with the paper-literal materialized
  // model on every sample and several weightings.
  const EnsembleEvaluator eval(ptrs_);
  const std::vector<std::vector<double>> weightings{
      {1.0, 1.0}, {0.9, 0.1}, {0.0, 1.0}, {0.3, 0.6}};
  for (const auto& w : weightings) {
    const TestTimeModel ttm(ptrs_, w);
    for (std::size_t i = 0; i < data_.size(); ++i) {
      EXPECT_EQ(eval.predict(data_.row(i), w), ttm.predict(data_.row(i)))
          << "sample " << i;
    }
  }
}

TEST_F(TtmTest, EvaluatorSimilaritiesMatchMaterializedCosines) {
  const EnsembleEvaluator eval(ptrs_);
  const std::vector<double> w{0.4, 0.8};
  const TestTimeModel ttm(ptrs_, w);
  const auto sims = eval.class_similarities(data_.row(0), w);
  for (int c = 0; c < 3; ++c) {
    const double direct = ops::cosine(data_.row(0).data(),
                                      ttm.class_vector(c).data(), 512);
    EXPECT_NEAR(sims[static_cast<std::size_t>(c)], direct, 1e-6);
  }
}

TEST_F(TtmTest, EvaluatorValidatesInputs) {
  const EnsembleEvaluator eval(ptrs_);
  const std::vector<double> w{0.5, 0.5};
  const std::vector<float> bad_dim(64, 0.0f);
  EXPECT_THROW((void)eval.predict(bad_dim, w), std::invalid_argument);
  const std::vector<double> bad_w{1.0};
  EXPECT_THROW((void)eval.predict(data_.row(0), bad_w), std::invalid_argument);
}

TEST(EnsembleEvaluatorStandalone, RejectsEmptyAndHeterogeneous) {
  EXPECT_THROW(EnsembleEvaluator({}), std::invalid_argument);
  OnlineHDClassifier a(2, 16);
  OnlineHDClassifier b(3, 16);
  EXPECT_THROW(EnsembleEvaluator({&a, &b}), std::invalid_argument);
}

}  // namespace
}  // namespace smore
