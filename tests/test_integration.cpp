// Integration tests: the full pipeline from synthetic generation through
// encoding, training, and LODO evaluation via the shared experiment engine —
// including the paper's qualitative claims at test scale (SMORE recovers
// held-out-domain accuracy that BaselineHD loses; HDC trains faster than the
// CNN DA baselines).

#include <gtest/gtest.h>

#include "core/smore.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "eval/experiment.hpp"
#include "hdc/encoder.hpp"
#include "hdc/onlinehd.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using testing::tiny_spec;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SyntheticSpec spec = tiny_spec(4, 3, 3, 32, 60, 0x9a9a);
    spec.domain_shift = 1.2;
    raw_ = new WindowDataset(generate_dataset(spec));

    EncoderConfig ec;
    ec.dim = 1024;
    ec.ngram = 3;
    ec.seed = 7;
    encoder_ = new MultiSensorEncoder(ec);
    encoded_ = new HvDataset(encoder_->encode_dataset(*raw_));
  }

  static void TearDownTestSuite() {
    delete raw_;
    delete encoder_;
    delete encoded_;
    raw_ = nullptr;
    encoder_ = nullptr;
    encoded_ = nullptr;
  }

  static WindowDataset* raw_;
  static MultiSensorEncoder* encoder_;
  static HvDataset* encoded_;
};

WindowDataset* PipelineTest::raw_ = nullptr;
MultiSensorEncoder* PipelineTest::encoder_ = nullptr;
HvDataset* PipelineTest::encoded_ = nullptr;

TEST_F(PipelineTest, EncodedAlignsWithRaw) {
  ASSERT_EQ(encoded_->size(), raw_->size());
  for (std::size_t i = 0; i < raw_->size(); i += 17) {
    EXPECT_EQ(encoded_->label(i), (*raw_)[i].label());
    EXPECT_EQ(encoded_->domain(i), (*raw_)[i].domain());
  }
}

TEST_F(PipelineTest, KfoldBeatsLodoForBaselineHd) {
  // Figure 1(b)'s motivation: random k-fold (leaky) CV inflates BaselineHD
  // accuracy relative to LODO under domain shift.
  OnlineHDConfig cfg;
  cfg.epochs = 10;

  // k-fold
  double kfold_acc = 0.0;
  const auto kfolds = kfold_splits(encoded_->size(), 3, 5);
  for (const auto& fold : kfolds) {
    OnlineHDClassifier model(raw_->num_classes(), encoded_->dim());
    model.fit(encoded_->select(fold.train), cfg);
    kfold_acc += model.accuracy(encoded_->select(fold.test));
  }
  kfold_acc /= static_cast<double>(kfolds.size());

  // LODO
  double lodo_acc = 0.0;
  for (int d = 0; d < raw_->num_domains(); ++d) {
    const Split fold = lodo_split(*raw_, d);
    OnlineHDClassifier model(raw_->num_classes(), encoded_->dim());
    model.fit(encoded_->select(fold.train), cfg);
    lodo_acc += model.accuracy(encoded_->select(fold.test));
  }
  lodo_acc /= static_cast<double>(raw_->num_domains());

  EXPECT_GT(kfold_acc, lodo_acc);
}

TEST_F(PipelineTest, SmoreRecoversLodoAccuracy) {
  // The headline claim at test scale: averaged over LODO folds, SMORE is at
  // least as accurate as the pooled BaselineHD on held-out domains.
  OnlineHDConfig cfg;
  cfg.epochs = 10;
  double baseline_acc = 0.0;
  double smore_acc = 0.0;
  for (int d = 0; d < raw_->num_domains(); ++d) {
    const Split fold = lodo_split(*raw_, d);
    const HvDataset train = encoded_->select(fold.train);
    const HvDataset test = encoded_->select(fold.test);

    OnlineHDClassifier baseline(raw_->num_classes(), encoded_->dim());
    baseline.fit(train, cfg);
    baseline_acc += baseline.accuracy(test);

    SmoreConfig sc;
    sc.domain_model = cfg;
    SmoreModel model(raw_->num_classes(), encoded_->dim(), sc);
    model.fit(train);
    smore_acc += model.accuracy(test);
  }
  baseline_acc /= static_cast<double>(raw_->num_domains());
  smore_acc /= static_cast<double>(raw_->num_domains());
  // The reference here is a pooled OnlineHD on SMORE's *own* encoder — a
  // stronger baseline than the paper's BaselineHD (which uses the fragile
  // projection pipeline; see DESIGN.md). SMORE must stay within noise of
  // this upper reference at unit-test scale, where per-domain models see
  // only ~45 samples each.
  EXPECT_GE(smore_acc, baseline_acc - 0.05);
  EXPECT_GT(smore_acc, 0.5);  // far above 1/4 chance
}

TEST_F(PipelineTest, ExperimentEngineRunsAllFiveAlgorithms) {
  SuiteConfig cfg;
  cfg.dim = encoded_->dim();
  cfg.hd_epochs = 5;
  cfg.cnn_epochs = 3;
  cfg.domino_inner_epochs = 1;
  cfg.domino_active_divisor = 8;
  const Split fold = lodo_split(*raw_, 0);

  for (const Algo algo : all_algos()) {
    const AlgoRunResult r = run_algorithm(algo, *raw_, *encoded_, fold, cfg);
    EXPECT_EQ(r.algo, algo);
    EXPECT_GE(r.accuracy, 0.0) << algo_name(algo);
    EXPECT_LE(r.accuracy, 1.0) << algo_name(algo);
    EXPECT_GT(r.accuracy, 0.25) << algo_name(algo);  // above 1/4 chance
    EXPECT_GT(r.train_seconds, 0.0) << algo_name(algo);
    EXPECT_GT(r.infer_seconds, 0.0) << algo_name(algo);
    if (algo != Algo::kSmore) {
      EXPECT_DOUBLE_EQ(r.ood_rate, 0.0);
    }
  }
}

TEST_F(PipelineTest, HdcTrainsFasterThanCnns) {
  // The efficiency claim's direction at test scale: BaselineHD/SMORE train
  // faster than TENT/MDANs on the same fold.
  SuiteConfig cfg;
  cfg.dim = encoded_->dim();
  cfg.hd_epochs = 5;
  cfg.cnn_epochs = 3;
  const Split fold = lodo_split(*raw_, 0);

  const double smore_t =
      run_algorithm(Algo::kSmore, *raw_, *encoded_, fold, cfg).train_seconds;
  const double tent_t =
      run_algorithm(Algo::kTent, *raw_, *encoded_, fold, cfg).train_seconds;
  const double mdan_t =
      run_algorithm(Algo::kMdans, *raw_, *encoded_, fold, cfg).train_seconds;
  EXPECT_LT(smore_t, tent_t);
  EXPECT_LT(smore_t, mdan_t);
}

TEST_F(PipelineTest, EncodeAmortizationAddsToTimes) {
  // BaselineHD runs its own projection pipeline (timed directly), so the
  // amortized shared-encoder attribution applies to the temporal-encoder
  // algorithms — checked on SMORE.
  SuiteConfig cfg;
  cfg.dim = encoded_->dim();
  cfg.hd_epochs = 2;
  const Split fold = lodo_split(*raw_, 0);
  const double base =
      run_algorithm(Algo::kSmore, *raw_, *encoded_, fold, cfg).train_seconds;
  cfg.encode_seconds_per_sample = 0.01;
  const double with_encode =
      run_algorithm(Algo::kSmore, *raw_, *encoded_, fold, cfg).train_seconds;
  EXPECT_GT(with_encode,
            base + 0.009 * static_cast<double>(fold.train.size()));
}

TEST_F(PipelineTest, RunAlgorithmValidatesFold) {
  SuiteConfig cfg;
  const Split empty;
  EXPECT_THROW((void)run_algorithm(Algo::kSmore, *raw_, *encoded_, empty, cfg),
               std::invalid_argument);
}

TEST_F(PipelineTest, RunAlgorithmValidatesAlignment) {
  SuiteConfig cfg;
  cfg.dim = encoded_->dim();
  const Split fold = lodo_split(*raw_, 0);
  const HvDataset misaligned(8);
  EXPECT_THROW((void)run_algorithm(Algo::kSmore, *raw_, misaligned, fold, cfg),
               std::invalid_argument);
}

TEST(AlgoMeta, NamesAndWorkloads) {
  EXPECT_STREQ(algo_name(Algo::kTent), "TENT");
  EXPECT_STREQ(algo_name(Algo::kMdans), "MDANs");
  EXPECT_STREQ(algo_name(Algo::kBaselineHd), "BaselineHD");
  EXPECT_STREQ(algo_name(Algo::kDomino), "DOMINO");
  EXPECT_STREQ(algo_name(Algo::kSmore), "SMORE");
  EXPECT_EQ(algo_workload(Algo::kTent), WorkloadKind::kCnnInference);
  EXPECT_EQ(algo_workload(Algo::kSmore), WorkloadKind::kHdcInference);
  EXPECT_EQ(all_algos().size(), 5u);
}

}  // namespace
}  // namespace smore
