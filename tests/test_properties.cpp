// Property-based parameterized suites (TEST_P sweeps) over the HDC algebra,
// the encoder, and SMORE invariants: the Sec 3.1 properties must hold across
// dimensions, seeds, and n-gram sizes, not just at one configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/smore.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hypervector.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

// ----- HDC algebra across (dim, seed) -----

class HdcAlgebraProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  std::size_t dim() const { return std::get<0>(GetParam()); }
  std::uint64_t seed() const { return std::get<1>(GetParam()); }
  // Orthogonality tolerance scales as ~4/sqrt(d).
  double tol() const { return 4.0 / std::sqrt(static_cast<double>(dim())); }
};

TEST_P(HdcAlgebraProperty, RandomVectorsNearlyOrthogonal) {
  Rng rng(seed());
  const auto a = Hypervector::random_bipolar(dim(), rng);
  const auto b = Hypervector::random_bipolar(dim(), rng);
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, tol());
}

TEST_P(HdcAlgebraProperty, BundleContainsMembers) {
  Rng rng(seed());
  const auto a = Hypervector::random_bipolar(dim(), rng);
  const auto b = Hypervector::random_bipolar(dim(), rng);
  const auto c = Hypervector::random_bipolar(dim(), rng);
  const auto bundled = a + b + c;
  EXPECT_GT(cosine_similarity(bundled, a), 0.35);
  Rng rng2(seed() ^ 0xffff);
  const auto outsider = Hypervector::random_bipolar(dim(), rng2);
  EXPECT_NEAR(cosine_similarity(bundled, outsider), 0.0, tol());
}

TEST_P(HdcAlgebraProperty, BindDistributesOverSimilarity) {
  // Binding with a common key preserves similarity: δ(k*a, k*b) == δ(a, b)
  // exactly for bipolar k.
  Rng rng(seed());
  const auto key = Hypervector::random_bipolar(dim(), rng);
  const auto a = Hypervector::random_bipolar(dim(), rng);
  auto b = a;
  // Perturb ~25% of coordinates.
  for (std::size_t i = 0; i < dim() / 4; ++i) b[i] = -b[i];
  EXPECT_NEAR(cosine_similarity(bind(key, a), bind(key, b)),
              cosine_similarity(a, b), 1e-6);
}

TEST_P(HdcAlgebraProperty, PermutationPreservesNorm) {
  Rng rng(seed());
  const auto h = Hypervector::random_bipolar(dim(), rng);
  EXPECT_NEAR(permute(h, 7).norm(), h.norm(), 1e-9);
}

TEST_P(HdcAlgebraProperty, BindSelfInverse) {
  Rng rng(seed());
  const auto a = Hypervector::random_bipolar(dim(), rng);
  const auto b = Hypervector::random_bipolar(dim(), rng);
  EXPECT_NEAR(cosine_similarity(bind(bind(a, b), b), a), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, HdcAlgebraProperty,
    ::testing::Combine(::testing::Values<std::size_t>(512, 2048, 8192),
                       ::testing::Values<std::uint64_t>(1, 99, 0xdead)));

// ----- encoder invariants across n-gram sizes -----

class EncoderNgramProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EncoderNgramProperty, DeterministicAndSimilarityPreserving) {
  EncoderConfig cfg;
  cfg.dim = 2048;
  cfg.ngram = GetParam();
  cfg.seed = 3;
  const MultiSensorEncoder enc(cfg);

  Window base(2, 40);
  Window near(2, 40);
  Window far(2, 40);
  for (std::size_t t = 0; t < 40; ++t) {
    const float x = static_cast<float>(t) * 0.25f;
    for (std::size_t c = 0; c < 2; ++c) {
      base.set(c, t, std::sin(x + 0.3f * static_cast<float>(c)));
      near.set(c, t, std::sin(x + 0.3f * static_cast<float>(c) + 0.1f));
      far.set(c, t, std::sin(3.7f * x + 1.0f));
    }
  }
  const auto hb = enc.encode(base);
  EXPECT_EQ(hb, enc.encode(base));
  EXPECT_GT(cosine_similarity(hb, enc.encode(near)),
            cosine_similarity(hb, enc.encode(far)));
}

INSTANTIATE_TEST_SUITE_P(NgramSizes, EncoderNgramProperty,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8));

// ----- SMORE invariants across δ* -----

class SmoreThresholdProperty : public ::testing::TestWithParam<double> {
 protected:
  static void SetUpTestSuite() {
    data_ = new HvDataset(
        testing::separable_hv_dataset(3, 3, 20, 512, 0.4, 0.7, 0x5a5a));
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }
  static HvDataset* data_;
};

HvDataset* SmoreThresholdProperty::data_ = nullptr;

TEST_P(SmoreThresholdProperty, PredictionAlwaysValidAndDeterministic) {
  SmoreConfig cfg;
  cfg.delta_star = GetParam();
  SmoreModel model(3, 512, cfg);
  model.fit(*data_);
  for (std::size_t i = 0; i < data_->size(); i += 5) {
    const int p1 = model.predict(data_->row(i));
    const int p2 = model.predict(data_->row(i));
    EXPECT_EQ(p1, p2);
    EXPECT_GE(p1, 0);
    EXPECT_LT(p1, 3);
  }
}

TEST_P(SmoreThresholdProperty, OodRateIsMonotoneInThreshold) {
  SmoreConfig cfg;
  cfg.delta_star = GetParam();
  SmoreModel model(3, 512, cfg);
  model.fit(*data_);
  const double at_param = model.ood_rate(*data_);
  model.set_delta_star(std::min(1.0, GetParam() + 0.2));
  EXPECT_GE(model.ood_rate(*data_), at_param);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, SmoreThresholdProperty,
                         ::testing::Values(0.4, 0.5, 0.65, 0.8, 0.9));

// ----- OnlineHD learning-rate sweep -----

class OnlineHdLrProperty : public ::testing::TestWithParam<float> {};

TEST_P(OnlineHdLrProperty, LearnsAtAnyReasonableRate) {
  const HvDataset data =
      testing::separable_hv_dataset(3, 1, 30, 512, 0.4, 0.0, 7);
  OnlineHDClassifier model(3, 512);
  OnlineHDConfig cfg;
  cfg.learning_rate = GetParam();
  cfg.epochs = 12;
  model.fit(data, cfg);
  EXPECT_GT(model.accuracy(data), 0.9) << "lr=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LearningRates, OnlineHdLrProperty,
                         ::testing::Values(0.01f, 0.035f, 0.1f, 0.5f));

}  // namespace
}  // namespace smore
