// Unit tests for the SMORE model (Sec 3.2-3.6, Algorithm 1): training
// structure, OOD behaviour on held-out domains, the DA win over a pooled
// baseline under shift, and δ* semantics.

#include "core/smore.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

TEST(Smore, ConstructionValidation) {
  EXPECT_THROW(SmoreModel(0, 16), std::invalid_argument);
  EXPECT_THROW(SmoreModel(3, 0), std::invalid_argument);
}

TEST(Smore, PredictBeforeFitThrows) {
  SmoreModel model(2, 16);
  const std::vector<float> q(16, 0.0f);
  EXPECT_THROW((void)model.predict(q), std::logic_error);
  EXPECT_FALSE(model.trained());
}

TEST(Smore, FitValidation) {
  SmoreModel model(2, 16);
  EXPECT_THROW(model.fit(HvDataset(16)), std::invalid_argument);
  const HvDataset wrong_dim = separable_hv_dataset(2, 2, 4, 32);
  EXPECT_THROW(model.fit(wrong_dim), std::invalid_argument);
}

TEST(Smore, TrainsOneModelPerDomain) {
  const HvDataset data = separable_hv_dataset(3, 4, 10, 256, 0.4, 0.4);
  SmoreModel model(3, 256);
  const auto acc = model.fit(data);
  EXPECT_TRUE(model.trained());
  EXPECT_EQ(model.num_domains(), 4u);
  EXPECT_EQ(acc.size(), 4u);
  EXPECT_EQ(model.descriptors().size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(model.domain_model(k).num_classes(), 3);
  }
}

TEST(Smore, HighAccuracyInDistribution) {
  const HvDataset data = separable_hv_dataset(4, 3, 30, 512, 0.4, 0.4);
  SmoreModel model(4, 512);
  model.fit(data);
  EXPECT_GT(model.accuracy(data), 0.9);
}

TEST(Smore, PredictDetailExposesAlgorithmState) {
  const HvDataset data = separable_hv_dataset(2, 3, 15, 256, 0.4, 0.4);
  SmoreModel model(2, 256);
  model.fit(data);
  const SmorePrediction p = model.predict_detail(data.row(0));
  EXPECT_GE(p.label, 0);
  EXPECT_LT(p.label, 2);
  EXPECT_EQ(p.domain_similarity.size(), 3u);
  EXPECT_EQ(p.weights.size(), 3u);
  double max_sim = -2.0;
  for (const double s : p.domain_similarity) max_sim = std::max(max_sim, s);
  EXPECT_DOUBLE_EQ(p.max_similarity, max_sim);
}

TEST(Smore, HeldOutDomainFlaggedOodMoreOften) {
  // Samples from a skewed unseen domain must trip the OOD detector more
  // often than training-domain samples.
  const HvDataset all = separable_hv_dataset(3, 4, 25, 1024, 0.35, 1.0);
  const auto train_idx = all.indices_excluding_domain(3);
  const auto test_idx = all.indices_of_domain(3);
  SmoreConfig cfg;
  cfg.delta_star = 0.65;
  SmoreModel model(3, 1024, cfg);
  model.fit(all.select(train_idx));
  const double ood_train = model.ood_rate(all.select(train_idx));
  const double ood_test = model.ood_rate(all.select(test_idx));
  EXPECT_GT(ood_test, ood_train);
}

TEST(Smore, BeatsPooledBaselineUnderShift) {
  // The paper's core claim at unit-test scale: under per-domain skew, SMORE's
  // domain-aware ensemble beats a single pooled OnlineHD on the held-out
  // domain.
  const HvDataset all = separable_hv_dataset(4, 4, 30, 1024, 0.45, 1.3, 0xabc);
  const auto train_idx = all.indices_excluding_domain(0);
  const auto test_idx = all.indices_of_domain(0);
  const HvDataset train = all.select(train_idx);
  const HvDataset test = all.select(test_idx);

  SmoreModel smore(4, 1024);
  smore.fit(train);

  OnlineHDClassifier pooled(4, 1024);
  OnlineHDConfig cfg;
  cfg.epochs = 20;
  pooled.fit(train, cfg);

  EXPECT_GE(smore.accuracy(test), pooled.accuracy(test) - 0.02);
}

TEST(Smore, DeltaStarExtremesChangeOodRate) {
  const HvDataset data = separable_hv_dataset(2, 3, 15, 256, 0.4, 0.5);
  SmoreModel model(2, 256);
  model.fit(data);
  model.set_delta_star(-1.0);  // nothing can be OOD
  EXPECT_DOUBLE_EQ(model.ood_rate(data), 0.0);
  model.set_delta_star(1.0);  // everything is OOD (cosine < 1 in practice)
  EXPECT_GT(model.ood_rate(data), 0.99);
}

TEST(Smore, SetDeltaStarValidates) {
  SmoreModel model(2, 16);
  EXPECT_THROW(model.set_delta_star(1.5), std::invalid_argument);
}

TEST(Smore, CalibrateDeltaStarHitsTargetRate) {
  const HvDataset data = separable_hv_dataset(3, 3, 40, 512, 0.4, 0.5);
  SmoreModel model(3, 512);
  model.fit(data);
  const double delta = model.calibrate_delta_star(data, 0.10);
  EXPECT_DOUBLE_EQ(model.config().delta_star, delta);
  // The measured in-distribution OOD rate must be close to the budget.
  EXPECT_NEAR(model.ood_rate(data), 0.10, 0.03);
}

TEST(Smore, CalibrateDeltaStarValidates) {
  SmoreModel model(2, 64);
  const HvDataset data = separable_hv_dataset(2, 2, 5, 64);
  EXPECT_THROW((void)model.calibrate_delta_star(data, 0.1), std::logic_error);
  model.fit(data);
  EXPECT_THROW((void)model.calibrate_delta_star(HvDataset(64), 0.1),
               std::invalid_argument);
  EXPECT_THROW((void)model.calibrate_delta_star(data, 1.5),
               std::invalid_argument);
}

TEST(Smore, AbsorbLabeledValidates) {
  SmoreModel model(3, 64);
  const std::vector<float> hv(64, 1.0f);
  EXPECT_THROW(model.absorb_labeled(hv, 0, 0), std::logic_error);
  const HvDataset data = separable_hv_dataset(3, 2, 10, 64);
  model.fit(data);
  const std::vector<float> bad_dim(32, 1.0f);
  EXPECT_THROW(model.absorb_labeled(bad_dim, 0, 0), std::invalid_argument);
  EXPECT_THROW(model.absorb_labeled(hv, 9, 0), std::invalid_argument);
}

TEST(Smore, AbsorbLabeledUpdatesExistingDomain) {
  const HvDataset data = separable_hv_dataset(3, 2, 15, 256, 0.4, 0.4);
  SmoreModel model(3, 256);
  model.fit(data);
  const std::size_t domains_before = model.num_domains();
  // Drift domain 1 with fresh labeled samples; the model must keep working
  // and keep its domain count.
  const HvDataset extra = separable_hv_dataset(3, 2, 5, 256, 0.6, 0.4, 99);
  for (std::size_t i = 0; i < extra.size(); ++i) {
    if (extra.domain(i) != 1) continue;
    model.absorb_labeled(extra.row(i), extra.label(i), 1);
  }
  EXPECT_EQ(model.num_domains(), domains_before);
  EXPECT_GT(model.accuracy(data), 0.8);  // no catastrophic forgetting
}

TEST(Smore, AbsorbLabeledCreatesNewDomain) {
  // Enroll a brand-new domain online: K grows, predictions stay valid, and
  // the new domain's samples classify well afterwards.
  const HvDataset data = separable_hv_dataset(3, 3, 20, 512, 0.4, 0.8);
  const auto train_idx = data.indices_excluding_domain(2);
  const auto new_idx = data.indices_of_domain(2);
  SmoreModel model(3, 512);
  model.fit(data.select(train_idx));
  EXPECT_EQ(model.num_domains(), 2u);

  const HvDataset new_domain = data.select(new_idx);
  for (std::size_t i = 0; i + 10 < new_domain.size(); ++i) {
    model.absorb_labeled(new_domain.row(i), new_domain.label(i), 2);
  }
  EXPECT_EQ(model.num_domains(), 3u);
  // The held-back tail of the new domain must classify correctly now.
  std::size_t correct = 0;
  std::size_t total = 0;
  for (std::size_t i = new_domain.size() - 10; i < new_domain.size(); ++i) {
    correct += model.predict(new_domain.row(i)) == new_domain.label(i) ? 1 : 0;
    ++total;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total), 0.6);
}

TEST(Smore, CalibrateZeroRateFlagsAlmostNothing) {
  const HvDataset data = separable_hv_dataset(3, 2, 30, 256, 0.4, 0.4);
  SmoreModel model(3, 256);
  model.fit(data);
  model.calibrate_delta_star(data, 0.0);
  EXPECT_LT(model.ood_rate(data), 0.05);
}

TEST(Smore, MaterializedModelAgreesWithFastPath) {
  const HvDataset data = separable_hv_dataset(3, 3, 20, 512, 0.4, 0.6);
  SmoreModel model(3, 512);
  model.fit(data);
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const TestTimeModel ttm = model.materialize_test_time_model(data.row(i));
    EXPECT_EQ(ttm.predict(data.row(i)), model.predict(data.row(i)));
  }
}

TEST(Smore, SingleDomainDegradesGracefully) {
  // K = 1: every weight collapses to the single model — behaves like
  // OnlineHD.
  const HvDataset data = separable_hv_dataset(3, 1, 30, 256, 0.4);
  SmoreModel model(3, 256);
  model.fit(data);
  EXPECT_EQ(model.num_domains(), 1u);
  EXPECT_GT(model.accuracy(data), 0.9);
}

TEST(Smore, WeightModesAllPredictReasonably) {
  const HvDataset all = separable_hv_dataset(3, 3, 25, 512, 0.4, 0.6);
  const auto train_idx = all.indices_excluding_domain(2);
  const auto test_idx = all.indices_of_domain(2);
  for (const WeightMode mode :
       {WeightMode::kStandardizedSoftmax, WeightMode::kClampedSimilarity,
        WeightMode::kRawSimilarity, WeightMode::kSoftmax,
        WeightMode::kTopOne}) {
    SmoreConfig cfg;
    cfg.weight_mode = mode;
    SmoreModel model(3, 512, cfg);
    model.fit(all.select(train_idx));
    EXPECT_GT(model.accuracy(all.select(test_idx)), 1.0 / 3.0)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(Smore, OodSampleUsesAllDomainsInDistributionUsesSubset) {
  const HvDataset data = separable_hv_dataset(2, 3, 20, 512, 0.3, 0.8);
  // Clamped mode makes the weight/similarity relationship directly
  // assertable (the default standardized softmax transforms the scale).
  SmoreConfig clamped;
  clamped.weight_mode = WeightMode::kClampedSimilarity;
  SmoreModel model(2, 512, clamped);
  model.fit(data);

  // Find one in-distribution prediction (non-OOD) and check that weights of
  // sub-threshold domains are zero; find an OOD one and check all weights
  // participate (clamped at 0).
  bool checked_in = false;
  bool checked_ood = false;
  for (std::size_t i = 0; i < data.size() && !(checked_in && checked_ood);
       ++i) {
    const SmorePrediction p = model.predict_detail(data.row(i));
    if (!p.is_ood) {
      for (std::size_t k = 0; k < p.weights.size(); ++k) {
        if (p.domain_similarity[k] < model.config().delta_star) {
          EXPECT_DOUBLE_EQ(p.weights[k], 0.0);
        }
      }
      checked_in = true;
    } else {
      for (std::size_t k = 0; k < p.weights.size(); ++k) {
        EXPECT_DOUBLE_EQ(p.weights[k],
                         std::max(p.domain_similarity[k], 0.0));
      }
      checked_ood = true;
    }
  }
  EXPECT_TRUE(checked_in);
}

}  // namespace
}  // namespace smore
