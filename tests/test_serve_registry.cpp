// ModelRegistry tests: lazy artifact loading, single-flight warm-load,
// byte-budget LRU eviction, and failure isolation (a corrupt artifact stays
// a per-tenant problem and is never cached).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "serve/registry.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

constexpr std::size_t kDim = 128;

/// One trained artifact rendered to a string, shared by every test (tenant
/// identity is a routing concern, not a weights concern, for these tests).
class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    windows_ = generate_dataset(testing::tiny_spec());
    EncoderConfig ec;
    ec.dim = kDim;
    Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                      windows_.num_classes());
    pipeline.fit(windows_);
    pipeline.quantize();
    pipeline.calibrate(windows_, 0.08);
    std::ostringstream buffer(std::ios::binary);
    pipeline.save(buffer);
    artifact_ = buffer.str();
  }

  /// Opener over the in-memory artifact: every tenant resolves to the same
  /// bytes; `load_calls` counts how often the expensive path actually ran.
  [[nodiscard]] ModelRegistry::ArtifactOpener opener(
      std::atomic<int>* load_calls = nullptr,
      std::chrono::milliseconds load_delay = {}) const {
    return [this, load_calls, load_delay](const std::string&) {
      if (load_calls != nullptr) load_calls->fetch_add(1);
      if (load_delay.count() > 0) std::this_thread::sleep_for(load_delay);
      std::istringstream in(artifact_, std::ios::binary);
      return ModelSnapshot::from_artifact(in, /*version=*/1);
    };
  }

  [[nodiscard]] std::size_t model_bytes() const {
    std::istringstream in(artifact_, std::ios::binary);
    return snapshot_resident_bytes(*ModelSnapshot::from_artifact(in, 1));
  }

  WindowDataset windows_;
  std::string artifact_;
};

TEST_F(RegistryTest, AcquireLoadsLazilyAndCachesThereafter) {
  std::atomic<int> load_calls{0};
  ModelRegistry registry(opener(&load_calls));
  EXPECT_EQ(registry.stats().resident_tenants, 0u);  // nothing at boot

  const auto first = registry.acquire("t0");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->tenant(), "t0");
  EXPECT_EQ(first->snapshot()->version, 1u);
  EXPECT_EQ(load_calls.load(), 1);

  const auto again = registry.acquire("t0");
  EXPECT_EQ(again.get(), first.get());  // same resident instance
  EXPECT_EQ(load_calls.load(), 1);      // no second load

  const RegistryStats s = registry.stats();
  EXPECT_EQ(s.loads, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.resident_tenants, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
}

TEST_F(RegistryTest, ByteBudgetEvictsLeastRecentlyUsed) {
  const std::size_t per_model = model_bytes();
  RegistryConfig cfg;
  cfg.byte_budget = per_model * 2 + per_model / 2;  // room for two models
  ModelRegistry registry(opener(), cfg);

  registry.acquire("t0");
  registry.acquire("t1");
  EXPECT_EQ(registry.stats().resident_tenants, 2u);
  EXPECT_EQ(registry.stats().evictions, 0u);

  // Touch t0 so t1 becomes the LRU, then overflow the budget with t2.
  registry.acquire("t0");
  registry.acquire("t2");
  const RegistryStats s = registry.stats();
  EXPECT_EQ(s.resident_tenants, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.resident_bytes, cfg.byte_budget);
  EXPECT_LE(s.peak_resident_bytes, cfg.byte_budget);
  EXPECT_NE(registry.resident("t0"), nullptr);  // recently used: kept
  EXPECT_EQ(registry.resident("t1"), nullptr);  // LRU: evicted
  EXPECT_NE(registry.resident("t2"), nullptr);

  // The evicted tenant reloads on demand.
  EXPECT_NE(registry.acquire("t1"), nullptr);
  EXPECT_EQ(registry.stats().loads, 4u);
}

TEST_F(RegistryTest, EvictionNeverInvalidatesAHandedOutModel) {
  const std::size_t per_model = model_bytes();
  RegistryConfig cfg;
  cfg.byte_budget = per_model + per_model / 2;  // room for ONE model
  ModelRegistry registry(opener(), cfg);

  const auto pinned = registry.acquire("t0");
  registry.acquire("t1");  // evicts t0 from the registry...
  EXPECT_EQ(registry.resident("t0"), nullptr);
  // ...but the handed-out shared_ptr (an in-flight batch, here a test
  // variable) still serves — eviction drops the cache reference only.
  EXPECT_EQ(pinned->snapshot()->version, 1u);
  EXPECT_NE(pinned->snapshot()->backend, nullptr);

  // A re-acquire after eviction is a fresh instance, not the pinned one.
  const auto reloaded = registry.acquire("t0");
  EXPECT_NE(reloaded.get(), pinned.get());
}

TEST_F(RegistryTest, SingleFlightConcurrentWarmLoad) {
  std::atomic<int> load_calls{0};
  ModelRegistry registry(
      opener(&load_calls, std::chrono::milliseconds(30)));
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<TenantModel>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&registry, &got, t] { got[static_cast<std::size_t>(t)] =
                                   registry.acquire("cold"); });
  }
  for (auto& t : threads) t.join();
  // A thundering herd on one cold tenant deserializes the artifact ONCE;
  // every thread gets the same instance.
  EXPECT_EQ(load_calls.load(), 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<std::size_t>(t)].get(), got[0].get());
  }
  EXPECT_EQ(registry.stats().loads, 1u);
}

TEST_F(RegistryTest, LoadFailureIsDeliveredButNeverCached) {
  std::atomic<int> calls{0};
  ModelRegistry registry([this, &calls](const std::string& tenant) {
    if (calls.fetch_add(1) == 0) {
      throw std::runtime_error("deploy in progress");
    }
    std::istringstream in(artifact_, std::ios::binary);
    (void)tenant;
    return ModelSnapshot::from_artifact(in, 1);
  });
  EXPECT_THROW(registry.acquire("flaky"), std::runtime_error);
  EXPECT_EQ(registry.stats().load_failures, 1u);
  EXPECT_EQ(registry.resident("flaky"), nullptr);  // failure not cached
  // The next acquire retries and succeeds.
  EXPECT_NE(registry.acquire("flaky"), nullptr);
  EXPECT_EQ(registry.stats().loads, 1u);
}

TEST_F(RegistryTest, PublishSwapsOnlyTheResidentTenant) {
  ModelRegistry registry(opener());
  const auto model = registry.acquire("t0");
  EXPECT_EQ(model->snapshot()->version, 1u);

  std::istringstream in(artifact_, std::ios::binary);
  const auto gen2 = ModelSnapshot::from_artifact(in, /*version=*/2);
  EXPECT_TRUE(registry.publish("t0", gen2));
  EXPECT_EQ(model->snapshot()->version, 2u);
  // Stale publisher loses (same CAS contract as SnapshotRegistry).
  std::istringstream in1(artifact_, std::ios::binary);
  EXPECT_FALSE(registry.publish("t0", ModelSnapshot::from_artifact(in1, 1)));
  // Cold tenants have nothing to publish onto.
  std::istringstream in2(artifact_, std::ios::binary);
  EXPECT_FALSE(
      registry.publish("cold", ModelSnapshot::from_artifact(in2, 3)));
}

TEST_F(RegistryTest, DirectorySourceProbesThenLoads) {
  const std::string dir = ::testing::TempDir();
  {
    std::ofstream out(dir + "/good.smore", std::ios::binary);
    out.write(artifact_.data(),
              static_cast<std::streamsize>(artifact_.size()));
  }
  {
    // A truncated deploy: probe must reject it before deserialization.
    std::ofstream out(dir + "/corrupt.smore", std::ios::binary);
    out.write(artifact_.data(),
              static_cast<std::streamsize>(artifact_.size() / 2));
  }
  ModelRegistry registry(ModelRegistry::directory_source(dir));
  const auto good = registry.acquire("good");
  ASSERT_NE(good, nullptr);
  EXPECT_EQ(good->dim(), kDim);
  EXPECT_THROW(registry.acquire("corrupt"), std::runtime_error);
  EXPECT_THROW(registry.acquire("missing"), std::runtime_error);
  EXPECT_EQ(registry.stats().load_failures, 2u);
  std::remove((dir + "/good.smore").c_str());
  std::remove((dir + "/corrupt.smore").c_str());
}

}  // namespace
}  // namespace smore
