// Equivalence tests for the batched similarity engine: every *_batch API and
// the underlying matrix kernels must agree with the per-query scalar path —
// bit-identical for integer predictions, within 1e-6 for similarities (the
// kernels accumulate in double but in a different order than the scalar
// loop). Covers OnlineHD, the descriptor bank, full SMORE predict, and the
// empty / batch-of-one edge cases.

#include "core/smore.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/onlinehd.hpp"
#include "hdc/ops.hpp"
#include "test_util.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace smore {
namespace {

constexpr double kTol = 1e-6;

HvMatrix random_block(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  HvMatrix m(rows, dim);
  for (std::size_t i = 0; i < rows * dim; ++i) {
    m.data()[i] = static_cast<float>(rng.normal());
  }
  return m;
}

TEST(BatchKernels, DotBatchMatchesScalarDot) {
  const std::size_t dim = 513;  // odd: exercises the unroll tails
  const std::size_t np = 7;     // not a multiple of the register block
  const HvMatrix q = random_block(1, dim, 1);
  const HvMatrix p = random_block(np, dim, 2);
  std::vector<double> batch(np);
  ops::dot_batch(q.data(), p.data(), np, dim, batch.data());
  for (std::size_t i = 0; i < np; ++i) {
    EXPECT_NEAR(batch[i], ops::dot(q.data(), p.row(i).data(), dim), kTol);
  }
}

TEST(BatchKernels, SimilarityMatrixMatchesCosine) {
  const std::size_t nq = 67;
  const std::size_t np = 5;
  const std::size_t dim = 256;
  const HvMatrix q = random_block(nq, dim, 3);
  const HvMatrix p = random_block(np, dim, 4);
  std::vector<double> serial(nq * np);
  std::vector<double> parallel(nq * np);
  ops::similarity_matrix(q.data(), nq, p.data(), np, dim, serial.data(),
                         nullptr, /*parallel=*/false);
  ops::similarity_matrix(q.data(), nq, p.data(), np, dim, parallel.data(),
                         nullptr, /*parallel=*/true);
  for (std::size_t i = 0; i < nq; ++i) {
    for (std::size_t j = 0; j < np; ++j) {
      const double ref = ops::cosine(q.row(i).data(), p.row(j).data(), dim);
      EXPECT_NEAR(serial[i * np + j], ref, kTol) << i << "," << j;
      // Serial and thread-pooled runs are bit-identical by construction.
      EXPECT_EQ(serial[i * np + j], parallel[i * np + j]);
    }
  }
}

TEST(BatchKernels, SimilarityMatrixZeroVectors) {
  const std::size_t dim = 64;
  HvMatrix q(2, dim);  // row 0 stays zero
  HvMatrix p(2, dim);  // row 1 stays zero
  for (std::size_t j = 0; j < dim; ++j) {
    q.row(1)[j] = 1.0f;
    p.row(0)[j] = 1.0f;
  }
  std::vector<double> sims(4, -7.0);
  ops::similarity_matrix(q.data(), 2, p.data(), 2, dim, sims.data());
  EXPECT_EQ(sims[0], 0.0);  // zero query
  EXPECT_EQ(sims[1], 0.0);
  EXPECT_EQ(sims[3], 0.0);  // zero prototype
  EXPECT_NEAR(sims[2], 1.0, kTol);
}

class BatchModelTest : public ::testing::Test {
 protected:
  static constexpr int kClasses = 4;
  static constexpr int kDomains = 3;
  static constexpr std::size_t kDim = 512;

  void SetUp() override {
    data_ = testing::separable_hv_dataset(kClasses, kDomains, 12, kDim, 0.4,
                                          0.3);
    holdout_ = testing::separable_hv_dataset(kClasses, kDomains, 5, kDim, 0.5,
                                             0.3, 0xbeef);
  }

  HvDataset data_{0};
  HvDataset holdout_{0};
};

TEST_F(BatchModelTest, OnlineHdBatchMatchesScalar) {
  OnlineHDClassifier model(kClasses, kDim);
  OnlineHDConfig cfg;
  cfg.epochs = 3;
  model.fit(data_, cfg);

  const std::vector<int> batch = model.predict_batch(holdout_.view());
  const std::vector<double> sims = model.similarities_batch(holdout_.view());
  ASSERT_EQ(batch.size(), holdout_.size());
  ASSERT_EQ(sims.size(), holdout_.size() * kClasses);
  for (std::size_t i = 0; i < holdout_.size(); ++i) {
    // Independent scalar reference: argmax over per-class cosines.
    int ref = 0;
    double best = -2.0;
    for (int c = 0; c < kClasses; ++c) {
      const double s = cosine_similarity(
          Hypervector(std::vector<float>(holdout_.row(i).begin(),
                                         holdout_.row(i).end())),
          model.class_vector(c));
      EXPECT_NEAR(sims[i * kClasses + static_cast<std::size_t>(c)], s, kTol);
      if (s > best) {
        best = s;
        ref = c;
      }
    }
    EXPECT_EQ(batch[i], ref) << "query " << i;
    EXPECT_EQ(model.predict(holdout_.row(i)), batch[i]);
  }
}

TEST_F(BatchModelTest, DescriptorBankBatchMatchesScalar) {
  const DomainDescriptorBank bank(data_);
  const std::vector<double> batch = bank.similarities_batch(holdout_.view());
  ASSERT_EQ(batch.size(), holdout_.size() * bank.size());
  for (std::size_t i = 0; i < holdout_.size(); ++i) {
    for (std::size_t k = 0; k < bank.size(); ++k) {
      const double ref = ops::cosine(holdout_.row(i).data(),
                                     bank.descriptor(k).data(), kDim);
      EXPECT_NEAR(batch[i * bank.size() + k], ref, kTol);
    }
  }
}

TEST_F(BatchModelTest, SmorePredictBatchMatchesScalarDetail) {
  SmoreModel model(kClasses, kDim);
  model.fit(data_);

  const std::vector<int> batch = model.predict_batch(holdout_.view());
  const SmoreEvaluation eval = model.evaluate(holdout_);
  ASSERT_EQ(batch.size(), holdout_.size());

  std::size_t correct = 0;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < holdout_.size(); ++i) {
    // predict_detail runs the scalar Gram path (one query at a time).
    const SmorePrediction detail = model.predict_detail(holdout_.row(i));
    EXPECT_EQ(batch[i], detail.label) << "query " << i;
    correct += detail.label == holdout_.label(i) ? 1 : 0;
    flagged += detail.is_ood ? 1 : 0;
  }
  const auto n = static_cast<double>(holdout_.size());
  EXPECT_DOUBLE_EQ(eval.accuracy, static_cast<double>(correct) / n);
  EXPECT_DOUBLE_EQ(eval.ood_rate, static_cast<double>(flagged) / n);
  EXPECT_DOUBLE_EQ(model.accuracy(holdout_), eval.accuracy);
  EXPECT_DOUBLE_EQ(model.ood_rate(holdout_), eval.ood_rate);
}

TEST_F(BatchModelTest, BatchOfOneEqualsScalar) {
  SmoreModel model(kClasses, kDim);
  model.fit(data_);
  const HvView one(holdout_.row(0));
  EXPECT_EQ(one.rows, 1u);
  const std::vector<int> batch = model.predict_batch(one);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], model.predict(holdout_.row(0)));
}

TEST_F(BatchModelTest, EmptyBatchReturnsEmpty) {
  SmoreModel model(kClasses, kDim);
  model.fit(data_);
  OnlineHDClassifier hd(kClasses, kDim);
  hd.bootstrap(data_.row(0), data_.label(0));

  const HvView empty;
  EXPECT_TRUE(model.predict_batch(empty).empty());
  EXPECT_TRUE(model.similarities_batch(empty).empty());
  EXPECT_TRUE(hd.predict_batch(empty).empty());
  EXPECT_TRUE(hd.similarities_batch(empty).empty());

  const HvDataset no_rows(kDim);
  const SmoreEvaluation eval = model.evaluate(no_rows);
  EXPECT_EQ(eval.accuracy, 0.0);
  EXPECT_EQ(eval.ood_rate, 0.0);
}

TEST_F(BatchModelTest, DimensionMismatchThrows) {
  SmoreModel model(kClasses, kDim);
  model.fit(data_);
  const HvMatrix wrong = random_block(3, kDim / 2, 9);
  EXPECT_THROW(model.predict_batch(wrong.view()), std::invalid_argument);
  OnlineHDClassifier hd(kClasses, kDim);
  EXPECT_THROW(hd.predict_batch(wrong.view()), std::invalid_argument);
  EXPECT_THROW(hd.similarities_batch(wrong.view()), std::invalid_argument);
}

TEST(EnsembleEvaluatorBatch, AllNegativeScoresStillFindArgmax) {
  // Regression: predict_batch scores are unnormalized by the query norm, so
  // with a large-norm query and all-negative cosines every score can fall
  // below the cosine range — a -2 argmax sentinel would freeze on class 0.
  const std::size_t dim = 8;
  OnlineHDClassifier model(2, dim);
  std::vector<float> q(dim, 2.0f);  // ‖q‖ ≈ 5.7
  std::vector<float> anti(dim);
  for (std::size_t j = 0; j < dim; ++j) anti[j] = -q[j];
  std::vector<float> mild(dim, 0.0f);
  mild[0] = -0.1f;
  model.set_class_vector(0, Hypervector(anti));   // cosine(q, C_0) = -1
  model.set_class_vector(1, Hypervector(mild));   // cosine(q, C_1) ≈ -0.35
  const EnsembleEvaluator evaluator({&model});
  const std::vector<double> w{1.0};
  const HvView query{std::span<const float>(q)};
  const std::vector<int> batch = evaluator.predict_batch(query, w);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[0], evaluator.predict(q, w));
}

TEST_F(BatchModelTest, BatchCachesFollowContinualUpdates) {
  SmoreModel model(kClasses, kDim);
  model.fit(data_);
  const std::vector<int> before = model.predict_batch(holdout_.view());
  // Absorb a labeled sample into a brand-new domain: every packed cache
  // (descriptors, evaluator) must refresh before the next batch call.
  model.absorb_labeled(holdout_.row(0), holdout_.label(0), 99);
  const std::vector<int> after = model.predict_batch(holdout_.view());
  ASSERT_EQ(after.size(), holdout_.size());
  for (std::size_t i = 0; i < holdout_.size(); ++i) {
    EXPECT_EQ(after[i], model.predict_detail(holdout_.row(i)).label);
  }
  (void)before;
}

}  // namespace
}  // namespace smore
