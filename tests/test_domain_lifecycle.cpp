// Domain lifecycle tests (DESIGN.md §13): wide-counter losslessness under
// sustained bundling, merge/evict invariants (survivors untouched bit for
// bit), the max_domains cap, recurring-drift re-enrollment, lifecycle-state
// persistence, and the serving integration under concurrency (tsan job).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/domain_lifecycle.hpp"
#include "core/smore.hpp"
#include "hdc/cluster.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/wide_counter.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

// ---------------------------------------------------------------------------
// Wide counters
// ---------------------------------------------------------------------------

TEST(WideCounter, LosslessUnderAMillionBundles) {
  // One million bundles of the integer value 100 per coordinate. The exact
  // sum, 1e8, is representable in float (ulp 8 at that magnitude, 1e8 % 8
  // == 0) — but the float partial sums past 2^26 are NOT: plain float
  // accumulation demonstrably drifts, while the wide-counter mirror equals
  // the exact sum bit for bit. This is the property that keeps a descriptor
  // honest after years of merge rounds.
  constexpr std::size_t kDim = 8;
  constexpr std::size_t kRounds = 1'000'000;
  const std::vector<float> x(kDim, 100.0f);

  WideAccumulator acc(kDim);
  std::vector<float> float_sum(kDim, 0.0f);
  for (std::size_t r = 0; r < kRounds; ++r) {
    acc.axpy(1.0, x);
    for (std::size_t j = 0; j < kDim; ++j) float_sum[j] += x[j];
  }

  std::vector<float> mirror(kDim);
  acc.materialize(mirror.data());
  const float exact = 100'000'000.0f;  // 1e8, exactly representable
  for (std::size_t j = 0; j < kDim; ++j) {
    EXPECT_EQ(mirror[j], exact) << "coordinate " << j;
    EXPECT_NE(float_sum[j], exact)
        << "float accumulation was expected to drift at coordinate " << j
        << " — the wide counter would be pointless otherwise";
  }
}

TEST(WideCounter, WeightedAxpyMatchesClosedForm) {
  // OnlineHD updates are weighted bundles C += w·H with w = float(1-δ).
  // Integer-valued H and a dyadic weight make the closed form exact.
  constexpr std::size_t kDim = 4;
  constexpr std::size_t kRounds = 100'000;
  const std::vector<float> x = {3.0f, -2.0f, 5.0f, 1.0f};
  WideAccumulator acc(kDim);
  for (std::size_t r = 0; r < kRounds; ++r) acc.axpy(0.5, x);
  std::vector<float> mirror(kDim);
  acc.materialize(mirror.data());
  for (std::size_t j = 0; j < kDim; ++j) {
    EXPECT_EQ(mirror[j], static_cast<float>(0.5 * kRounds) * x[j]);
  }
}

TEST(WideCounter, AddAndAssignRoundTrip) {
  const std::vector<float> a = {1.5f, -2.25f, 0.0f};
  const std::vector<float> b = {4.0f, 8.0f, -1.0f};
  WideAccumulator left(3);
  WideAccumulator right(3);
  left.assign_from(a);
  right.assign_from(b);
  left.add(right);
  std::vector<float> out(3);
  left.materialize(out.data());
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(out[j], a[j] + b[j]);
}

// ---------------------------------------------------------------------------
// Descriptor bank: order-independence and evict invariants
// ---------------------------------------------------------------------------

/// Integer-valued (bipolar) rows: double accumulation of integers is exact,
/// so bundling order cannot change the result — bit for bit.
HvMatrix bipolar_rows(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  HvMatrix m(rows, dim);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < dim; ++j) m.row(i)[j] = rng.bipolar();
  }
  return m;
}

TEST(DomainLifecycle, AbsorbOrderCannotChangeTheDescriptor) {
  const HvMatrix rows = bipolar_rows(64, 96, 0xabcd);
  DomainDescriptorBank forward;
  DomainDescriptorBank backward;
  DomainDescriptorBank batched;
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    forward.absorb(rows.row(i), /*domain_id=*/7);
  }
  for (std::size_t i = rows.rows(); i-- > 0;) {
    backward.absorb(rows.row(i), /*domain_id=*/7);
  }
  batched.absorb_batch(rows.view(), /*domain_id=*/7);
  EXPECT_EQ(forward.descriptor(0), backward.descriptor(0));
  EXPECT_EQ(forward.descriptor(0), batched.descriptor(0));
  EXPECT_EQ(forward.sample_count(0), 64u);
  EXPECT_EQ(batched.sample_count(0), 64u);
}

TEST(DomainLifecycle, EvictNeverPerturbsSurvivors) {
  const HvDataset data = separable_hv_dataset(3, 4, 15, 128, 0.3, 0.8);
  SmoreModel model(3, 128);
  model.fit(data);
  ASSERT_EQ(model.num_domains(), 4u);

  const SmoreModel original = model.clone();
  model.remove_domain(1);

  ASSERT_EQ(model.num_domains(), 3u);
  const std::vector<std::size_t> survivors = {0, 2, 3};
  for (std::size_t pos = 0; pos < survivors.size(); ++pos) {
    const std::size_t was = survivors[pos];
    EXPECT_EQ(model.descriptors().domain_id(pos),
              original.descriptors().domain_id(was));
    EXPECT_EQ(model.descriptors().descriptor(pos),
              original.descriptors().descriptor(was));
    EXPECT_EQ(model.descriptors().sample_count(pos),
              original.descriptors().sample_count(was));
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(model.domain_model(pos).class_vector(c),
                original.domain_model(was).class_vector(c));
    }
  }
  // The shrunk ensemble still serves.
  EXPECT_NO_THROW((void)model.predict(data.row(0)));

  EXPECT_THROW(model.remove_domain(99), std::out_of_range);
  model.remove_domain(0);
  model.remove_domain(0);
  ASSERT_EQ(model.num_domains(), 1u);
  EXPECT_THROW(model.remove_domain(0), std::logic_error);  // never the last
}

// ---------------------------------------------------------------------------
// Lifecycle rounds: cap, recurring drift, usage-ranked eviction
// ---------------------------------------------------------------------------

/// A coherent OOD cluster: one bipolar prototype plus small noise, far from
/// the training distribution of `separable_hv_dataset(seed=0xfeed)`.
HvMatrix drift_cluster(std::size_t rows, std::size_t dim, std::uint64_t seed,
                       double noise = 0.25) {
  Rng rng(seed);
  std::vector<float> proto(dim);
  for (auto& v : proto) v = rng.bipolar();
  HvMatrix m(rows, dim);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      m.row(i)[j] =
          proto[j] + static_cast<float>(rng.normal(0.0, noise));
    }
  }
  return m;
}

SmoreModel lifecycle_fixture_model(std::size_t dim = 256) {
  const HvDataset data =
      separable_hv_dataset(3, 3, 20, dim, 0.3, 0.8);
  SmoreModel model(3, dim);
  model.fit(data);
  return model;
}

TEST(DomainLifecycle, BankNeverExceedsTheCap) {
  SmoreModel model = lifecycle_fixture_model();
  LifecycleConfig cfg;
  cfg.max_domains = 5;
  cfg.merge_threshold = 0.95;  // distinct prototypes never merge
  DomainLifecycle engine(cfg);

  const std::vector<int> labels(24, 0);
  for (std::uint64_t round = 0; round < 12; ++round) {
    const HvMatrix burst = drift_cluster(24, model.dim(), 0x1000 + round);
    const LifecycleRoundStats stats =
        engine.run_round(model, burst.view(), labels);
    EXPECT_LE(model.num_domains(), cfg.max_domains) << "round " << round;
    EXPECT_EQ(model.descriptors().size(), model.num_domains());
    EXPECT_EQ(stats.absorbed, 24u);
  }
  // After 12 novel bursts the cap must have actually fired.
  EXPECT_EQ(model.num_domains(), cfg.max_domains);
}

TEST(DomainLifecycle, RecurringDriftMergesInsteadOfEnrolling) {
  SmoreModel model = lifecycle_fixture_model();
  LifecycleConfig cfg;
  cfg.max_domains = 8;
  cfg.merge_threshold = 0.80;
  DomainLifecycle engine(cfg);
  const std::vector<int> labels(32, 1);

  // First sight of the drift: enrolls (it matches nothing).
  const HvMatrix first = drift_cluster(32, model.dim(), 0x5eed, 0.2);
  const LifecycleRoundStats round1 =
      engine.run_round(model, first.view(), labels);
  EXPECT_GE(round1.enrolled_new, 1u);
  const std::size_t bank_after_first = model.num_domains();
  const int frontier = model.descriptors().next_domain_id();

  // The same drift recurs (fresh noise, same prototype): the round must
  // bundle into the existing pseudo-domain — no new id, no bank growth.
  const HvMatrix again = drift_cluster(32, model.dim(), 0x5eed, 0.2);
  const LifecycleRoundStats round2 =
      engine.run_round(model, again.view(), labels);
  EXPECT_GE(round2.merged, 1u);
  EXPECT_EQ(round2.enrolled_new, 0u);
  EXPECT_EQ(model.num_domains(), bank_after_first);
  EXPECT_EQ(model.descriptors().next_domain_id(), frontier);

  // The merged descriptor carries the evidence.
  bool saw_merge = false;
  for (std::size_t k = 0; k < model.descriptors().size(); ++k) {
    saw_merge = saw_merge || model.descriptors().meta(k).merge_count > 0;
  }
  EXPECT_TRUE(saw_merge);
}

TEST(DomainLifecycle, EvictionPrefersTheUnusedDomain) {
  SmoreModel model = lifecycle_fixture_model();
  LifecycleConfig cfg;
  cfg.max_domains = 4;  // fixture has 3 → one free slot
  cfg.merge_threshold = 0.95;
  cfg.protected_domains = 3;  // source domains are sacred
  DomainLifecycle engine(cfg);
  const std::vector<int> labels(24, 2);

  // Enroll drift A into the free slot, then keep crediting usage to A while
  // novel drift keeps arriving: every new burst must evict the NEWCOMER
  // (usage 0), never A (used) and never a protected source domain.
  const HvMatrix a = drift_cluster(24, model.dim(), 0xa11ce, 0.2);
  (void)engine.run_round(model, a.view(), labels);
  ASSERT_EQ(model.num_domains(), 4u);
  const int id_a = model.descriptors().domain_id(3);

  for (std::uint64_t round = 0; round < 4; ++round) {
    const std::vector<std::pair<int, double>> usage = {{id_a, 50.0}};
    const HvMatrix novel = drift_cluster(24, model.dim(), 0xb000 + round);
    const LifecycleRoundStats stats =
        engine.run_round(model, novel.view(), labels, usage);
    EXPECT_EQ(stats.evicted, 1u) << "round " << round;
    ASSERT_EQ(model.num_domains(), 4u);
    // A survives every time; the protected source domains 0..2 do too.
    EXPECT_EQ(model.descriptors().domain_id(0), 0);
    EXPECT_EQ(model.descriptors().domain_id(1), 1);
    EXPECT_EQ(model.descriptors().domain_id(2), 2);
    bool a_alive = false;
    for (std::size_t k = 0; k < model.descriptors().size(); ++k) {
      a_alive = a_alive || model.descriptors().domain_id(k) == id_a;
    }
    EXPECT_TRUE(a_alive) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Persistence: lifecycle state survives save/load exactly
// ---------------------------------------------------------------------------

TEST(DomainLifecycle, LifecycleStateRoundTripsThroughSerialization) {
  SmoreModel model = lifecycle_fixture_model(128);
  LifecycleConfig cfg;
  cfg.max_domains = 6;
  DomainLifecycle engine(cfg);
  const std::vector<int> labels(24, 0);
  const HvMatrix burst = drift_cluster(24, model.dim(), 0x5eed, 0.2);
  const std::vector<std::pair<int, double>> usage = {{0, 3.0}, {2, 7.0}};
  (void)engine.run_round(model, burst.view(), labels, usage);
  const HvMatrix again = drift_cluster(24, model.dim(), 0x5eed, 0.2);
  (void)engine.run_round(model, again.view(), labels);

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  model.save(buffer);
  SmoreModel loaded = SmoreModel::load(buffer);

  const DomainDescriptorBank& a = model.descriptors();
  const DomainDescriptorBank& b = loaded.descriptors();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.clock(), b.clock());
  EXPECT_EQ(a.next_domain_id(), b.next_domain_id());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.domain_id(k), b.domain_id(k));
    EXPECT_EQ(a.sample_count(k), b.sample_count(k));
    EXPECT_EQ(a.descriptor(k), b.descriptor(k));
    EXPECT_EQ(a.meta(k).enrolled_round, b.meta(k).enrolled_round);
    EXPECT_EQ(a.meta(k).last_used_round, b.meta(k).last_used_round);
    EXPECT_EQ(a.meta(k).merge_count, b.meta(k).merge_count);
    EXPECT_DOUBLE_EQ(a.meta(k).usage, b.meta(k).usage);
  }

  // The DOUBLE masters survived, not just the mirrors: absorbing the same
  // row into both banks must keep them bitwise identical.
  const HvMatrix extra = bipolar_rows(1, model.dim(), 0x900d);
  const int id = a.domain_id(0);
  model.descriptors().absorb(extra.row(0), id);
  loaded.descriptors().absorb(extra.row(0), id);
  EXPECT_EQ(model.descriptors().descriptor(0),
            loaded.descriptors().descriptor(0));
}

// ---------------------------------------------------------------------------
// Serving integration (these run under tsan in CI)
// ---------------------------------------------------------------------------

TEST(DomainLifecycleServe, ServerKeepsTheBankBoundedUnderConcurrentLoad) {
  constexpr std::size_t kDim = 128;
  const HvDataset train = separable_hv_dataset(3, 3, 20, kDim, 0.4, 0.5);
  SmoreModel model(3, kDim);
  model.fit(train);
  model.calibrate_delta_star(train, 0.05);
  const auto snap = ModelSnapshot::make(model.clone(), false, 1);

  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.num_workers = 2;
  cfg.adaptation = true;
  cfg.lifecycle = true;
  cfg.adapt_min_batch = 8;
  cfg.adapt_poll_ms = 1;
  cfg.lifecycle_config.max_domains = 4;
  cfg.lifecycle_config.cluster.max_clusters = 2;
  InferenceServer server(snap, nullptr, cfg);

  // Three producers: two stream in-distribution rows, one streams pure
  // noise (OOD) that keeps the lifecycle enrolling and evicting.
  constexpr std::size_t kPerProducer = 120;
  std::atomic<std::size_t> fulfilled{0};
  auto produce = [&](std::uint64_t seed, bool noisy) {
    Rng rng(seed);
    std::vector<float> hv(kDim);
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      if (noisy) {
        for (auto& v : hv) v = static_cast<float>(rng.normal());
      } else {
        const auto row = train.row(i % train.size());
        hv.assign(row.begin(), row.end());
      }
      auto fut = server.submit(std::vector<float>(hv));
      (void)fut.get();
      fulfilled.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread t1(produce, 0x111, false);
  std::thread t2(produce, 0x222, false);
  std::thread t3(produce, 0x333, true);
  t1.join();
  t2.join();
  t3.join();

  // Give the adaptation worker a moment to drain a final round, then stop.
  for (int spin = 0; spin < 200 && server.stats().adaptation_rounds == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.shutdown();

  const ServerStats stats = server.stats();
  EXPECT_EQ(fulfilled.load(), 3 * kPerProducer);
  EXPECT_EQ(stats.completed, 3 * kPerProducer);
  EXPECT_GE(stats.adaptation_rounds, 1u);
  EXPECT_LE(stats.live_domains, cfg.lifecycle_config.max_domains);
  // Every buffered OOD window is accounted for, absorbed or shed.
  EXPECT_GE(stats.ood_flagged,
            stats.adaptation_absorbed + stats.adaptation_dropped);
}

TEST(DomainLifecycleServe, RouterAdaptsTenantsIndependently) {
  constexpr std::size_t kDim = 128;
  const HvDataset train = separable_hv_dataset(3, 3, 20, kDim, 0.4, 0.5);
  auto model = std::make_shared<SmoreModel>(3, kDim);
  model->fit(train);
  model->calibrate_delta_star(train, 0.05);

  const auto opener = [model](const std::string&) {
    return ModelSnapshot::make(model->clone(), false, 1);
  };
  const auto registry =
      std::make_shared<ModelRegistry>(opener, RegistryConfig{});

  MultiTenantConfig cfg;
  cfg.num_shards = 2;
  cfg.workers_per_shard = 1;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.adaptation = true;
  cfg.adapt_min_batch = 8;
  cfg.adapt_poll_ms = 1;
  cfg.lifecycle_config.max_domains = 4;
  cfg.lifecycle_config.cluster.max_clusters = 2;
  MultiTenantServer server(registry, cfg);

  // Tenant "drifty" streams noise (all OOD); tenant "steady" streams
  // training rows. Only drifty's model may gain domains.
  constexpr std::size_t kPerTenant = 160;
  auto produce = [&](const std::string& tenant, std::uint64_t seed,
                     bool noisy) {
    Rng rng(seed);
    std::vector<float> hv(kDim);
    for (std::size_t i = 0; i < kPerTenant; ++i) {
      if (noisy) {
        for (auto& v : hv) v = static_cast<float>(rng.normal());
      } else {
        const auto row = train.row(i % train.size());
        hv.assign(row.begin(), row.end());
      }
      (void)server.submit(tenant, std::vector<float>(hv)).get();
    }
  };
  std::thread t1(produce, "drifty", 0xd41f7, true);
  std::thread t2(produce, "steady", 0x57ead, false);
  t1.join();
  t2.join();

  for (int spin = 0; spin < 200 && server.stats().adaptation_rounds == 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.shutdown();

  const MultiTenantStats fleet = server.stats();
  EXPECT_GE(fleet.adaptation_rounds, 1u);
  EXPECT_EQ(fleet.completed, 2 * kPerTenant);

  bool saw_drifty = false;
  for (const TenantServerStats& t : server.tenant_stats()) {
    if (t.tenant == "drifty") {
      saw_drifty = true;
      EXPECT_GE(t.adaptation_rounds, 1u);
    } else if (t.tenant == "steady") {
      // A steady tenant sees few stray OOD flags; whatever it buffered is
      // accounted (absorbed or shed), and overflow is a subset of shed.
      EXPECT_LE(t.adaptation_overflow, t.adaptation_dropped);
      EXPECT_LE(t.adaptation_absorbed + t.adaptation_dropped, t.ood_flagged);
    }
  }
  EXPECT_TRUE(saw_drifty);

  // The drifty tenant's LIVE generation respects the cap.
  const auto tm = registry->resident("drifty");
  ASSERT_NE(tm, nullptr);
  EXPECT_LE(tm->snapshot()->model->num_domains(),
            cfg.lifecycle_config.max_domains);
  EXPECT_GE(tm->snapshot()->version, 2u);  // at least one published round
}

}  // namespace
}  // namespace smore
