// Unit tests for binarized inference: bit packing, Hamming algebra, and
// accuracy retention after sign quantization.

#include "hdc/binary.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

TEST(BinaryVector, PacksBitsBySign) {
  const std::vector<float> v{1.0f, -2.0f, 0.0f, -0.5f, 3.0f};
  const BinaryVector b{v};
  EXPECT_EQ(b.dim(), 5u);
  EXPECT_EQ(b.bit(0), 1);
  EXPECT_EQ(b.bit(1), 0);
  EXPECT_EQ(b.bit(2), 1);  // >= 0 maps to 1
  EXPECT_EQ(b.bit(3), 0);
  EXPECT_EQ(b.bit(4), 1);
}

TEST(BinaryVector, HammingBasics) {
  const std::vector<float> a{1.0f, 1.0f, -1.0f, -1.0f};
  const std::vector<float> b{1.0f, -1.0f, -1.0f, 1.0f};
  const BinaryVector ba{a};
  const BinaryVector bb{b};
  EXPECT_EQ(ba.hamming(ba), 0u);
  EXPECT_EQ(ba.hamming(bb), 2u);
  EXPECT_EQ(bb.hamming(ba), 2u);  // symmetric
}

TEST(BinaryVector, HammingDimMismatchThrows) {
  const std::vector<float> a(8, 1.0f);
  const std::vector<float> b(16, 1.0f);
  EXPECT_THROW((void)BinaryVector{a}.hamming(BinaryVector{b}),
               std::invalid_argument);
}

TEST(BinaryVector, SimilarityMatchesBipolarCosine) {
  // For exactly bipolar vectors, 1 - 2h/d equals the cosine.
  Rng rng(3);
  const auto a = Hypervector::random_bipolar(512, rng);
  const auto b = Hypervector::random_bipolar(512, rng);
  const BinaryVector ba(a.span());
  const BinaryVector bb(b.span());
  EXPECT_NEAR(ba.similarity(bb), cosine_similarity(a, b), 1e-9);
  EXPECT_NEAR(ba.similarity(ba), 1.0, 1e-12);
}

TEST(BinaryVector, CrossesWordBoundaries) {
  // dim = 130 spans three 64-bit words; flip one bit in the last word.
  std::vector<float> a(130, 1.0f);
  std::vector<float> b(130, 1.0f);
  b[129] = -1.0f;
  EXPECT_EQ(BinaryVector{a}.hamming(BinaryVector{b}), 1u);
}

TEST(BinaryModel, FootprintIs32xSmaller) {
  OnlineHDClassifier model(4, 2048);
  const BinaryModel binary(model);
  EXPECT_EQ(binary.footprint_bytes(), 4u * 2048 / 8);
  EXPECT_EQ(binary.num_classes(), 4);
  EXPECT_EQ(binary.dim(), 2048u);
}

TEST(BinaryModel, RetainsMostAccuracyOnSeparableData) {
  const HvDataset data = separable_hv_dataset(4, 1, 40, 2048, 0.5);
  OnlineHDClassifier model(4, 2048);
  OnlineHDConfig cfg;
  cfg.epochs = 10;
  model.fit(data, cfg);
  const double full = model.accuracy(data);
  const BinaryModel binary(model);
  EXPECT_GT(binary.accuracy(data), full - 0.08);
}

TEST(BinaryModel, PredictsQuantizedQueriesConsistently) {
  const HvDataset data = separable_hv_dataset(3, 1, 10, 256, 0.4);
  OnlineHDClassifier model(3, 256);
  model.fit(data, {});
  const BinaryModel binary(model);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const BinaryVector q(data.row(i));
    EXPECT_EQ(binary.predict(q), binary.predict(data.row(i)));
  }
}

TEST(BinaryModel, DimMismatchThrows) {
  OnlineHDClassifier model(2, 64);
  const BinaryModel binary(model);
  const std::vector<float> bad(32, 1.0f);
  EXPECT_THROW((void)binary.predict(bad), std::invalid_argument);
}

}  // namespace
}  // namespace smore
