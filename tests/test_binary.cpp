// Unit tests for binarized inference: bit packing, Hamming algebra, the
// blocked packed kernels (ops::hamming_matrix / sign_pack_matrix vs the
// scalar BinaryVector reference), and accuracy retention after sign
// quantization of BinaryModel and BinarySmoreModel.

#include "hdc/binary.hpp"

#include <gtest/gtest.h>

#include "core/binary_smore.hpp"
#include "hdc/bit_matrix.hpp"
#include "hdc/ops_binary.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

/// Random float matrix with positive and negative entries.
HvMatrix random_block(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  HvMatrix block(rows, dim);
  for (std::size_t i = 0; i < rows * dim; ++i) {
    block.data()[i] = static_cast<float>(rng.normal());
  }
  return block;
}

TEST(BinaryVector, PacksBitsBySign) {
  const std::vector<float> v{1.0f, -2.0f, 0.0f, -0.5f, 3.0f};
  const BinaryVector b{v};
  EXPECT_EQ(b.dim(), 5u);
  EXPECT_EQ(b.bit(0), 1);
  EXPECT_EQ(b.bit(1), 0);
  EXPECT_EQ(b.bit(2), 1);  // >= 0 maps to 1
  EXPECT_EQ(b.bit(3), 0);
  EXPECT_EQ(b.bit(4), 1);
}

TEST(BinaryVector, HammingBasics) {
  const std::vector<float> a{1.0f, 1.0f, -1.0f, -1.0f};
  const std::vector<float> b{1.0f, -1.0f, -1.0f, 1.0f};
  const BinaryVector ba{a};
  const BinaryVector bb{b};
  EXPECT_EQ(ba.hamming(ba), 0u);
  EXPECT_EQ(ba.hamming(bb), 2u);
  EXPECT_EQ(bb.hamming(ba), 2u);  // symmetric
}

TEST(BinaryVector, HammingDimMismatchThrows) {
  const std::vector<float> a(8, 1.0f);
  const std::vector<float> b(16, 1.0f);
  EXPECT_THROW((void)BinaryVector{a}.hamming(BinaryVector{b}),
               std::invalid_argument);
}

TEST(BinaryVector, SimilarityMatchesBipolarCosine) {
  // For exactly bipolar vectors, 1 - 2h/d equals the cosine.
  Rng rng(3);
  const auto a = Hypervector::random_bipolar(512, rng);
  const auto b = Hypervector::random_bipolar(512, rng);
  const BinaryVector ba(a.span());
  const BinaryVector bb(b.span());
  EXPECT_NEAR(ba.similarity(bb), cosine_similarity(a, b), 1e-9);
  EXPECT_NEAR(ba.similarity(ba), 1.0, 1e-12);
}

TEST(BinaryVector, CrossesWordBoundaries) {
  // dim = 130 spans three 64-bit words; flip one bit in the last word.
  std::vector<float> a(130, 1.0f);
  std::vector<float> b(130, 1.0f);
  b[129] = -1.0f;
  EXPECT_EQ(BinaryVector{a}.hamming(BinaryVector{b}), 1u);
}

TEST(BinaryModel, FootprintIs32xSmaller) {
  OnlineHDClassifier model(4, 2048);
  const BinaryModel binary(model);
  EXPECT_EQ(binary.footprint_bytes(), 4u * 2048 / 8);
  EXPECT_EQ(binary.num_classes(), 4);
  EXPECT_EQ(binary.dim(), 2048u);
}

TEST(BinaryModel, RetainsMostAccuracyOnSeparableData) {
  const HvDataset data = separable_hv_dataset(4, 1, 40, 2048, 0.5);
  OnlineHDClassifier model(4, 2048);
  OnlineHDConfig cfg;
  cfg.epochs = 10;
  model.fit(data, cfg);
  const double full = model.accuracy(data);
  const BinaryModel binary(model);
  EXPECT_GT(binary.accuracy(data), full - 0.08);
}

TEST(BinaryModel, PredictsQuantizedQueriesConsistently) {
  const HvDataset data = separable_hv_dataset(3, 1, 10, 256, 0.4);
  OnlineHDClassifier model(3, 256);
  model.fit(data, {});
  const BinaryModel binary(model);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const BinaryVector q(data.row(i));
    EXPECT_EQ(binary.predict(q), binary.predict(data.row(i)));
  }
}

TEST(BinaryModel, DimMismatchThrows) {
  OnlineHDClassifier model(2, 64);
  const BinaryModel binary(model);
  const std::vector<float> bad(32, 1.0f);
  EXPECT_THROW((void)binary.predict(bad), std::invalid_argument);
}

// --- packed kernel layer -------------------------------------------------

TEST(OpsSignPack, MatrixMatchesBinaryVectorAtAwkwardDims) {
  // Round-trip at non-multiple-of-64 dims: the packed rows must equal the
  // scalar BinaryVector packing word for word (padding bits included).
  for (const std::size_t dim : {1u, 63u, 64u, 65u, 127u, 130u, 192u}) {
    const HvMatrix block = random_block(9, dim, 0xbeef + dim);
    const BitMatrix packed = ops::sign_pack_matrix(block.view());
    ASSERT_EQ(packed.rows(), 9u);
    ASSERT_EQ(packed.dim(), dim);
    ASSERT_EQ(packed.words_per_row(), (dim + 63) / 64);
    for (std::size_t r = 0; r < packed.rows(); ++r) {
      const BinaryVector reference(block.row(r));
      for (std::size_t w = 0; w < packed.words_per_row(); ++w) {
        ASSERT_EQ(packed.row(r)[w], reference.words()[w])
            << "dim " << dim << " row " << r << " word " << w;
      }
      for (std::size_t j = 0; j < dim; ++j) {
        ASSERT_EQ(packed.bit(r, j), block.row(r)[j] >= 0.0f ? 1 : 0);
      }
    }
  }
}

TEST(OpsHamming, MatrixBitIdenticalToScalarLoopAnyThreading) {
  // nq = 150 crosses the kBitRowTile boundary, np = 19 exercises both the
  // 4-wide register block and its remainder, dim = 130 has padding bits.
  const std::size_t nq = 150, np = 19, dim = 130;
  const HvMatrix queries = random_block(nq, dim, 0x9a);
  const HvMatrix protos = random_block(np, dim, 0x9b);
  const BitMatrix qbits = ops::sign_pack_matrix(queries.view());
  const BitMatrix pbits = ops::sign_pack_matrix(protos.view());

  std::vector<std::size_t> serial(nq * np);
  std::vector<std::size_t> parallel(nq * np);
  ops::hamming_matrix(qbits.view(), pbits.view(), serial.data(),
                      /*parallel=*/false);
  ops::hamming_matrix(qbits.view(), pbits.view(), parallel.data(),
                      /*parallel=*/true);
  EXPECT_EQ(serial, parallel);  // integer distances: bit-identical

  for (std::size_t q = 0; q < nq; ++q) {
    const BinaryVector bq(queries.row(q));
    for (std::size_t p = 0; p < np; ++p) {
      ASSERT_EQ(serial[q * np + p], bq.hamming(BinaryVector(protos.row(p))))
          << "q " << q << " p " << p;
    }
  }
}

TEST(OpsHamming, SimilarityMatrixMatchesScalarSimilarity) {
  const std::size_t nq = 70, np = 5, dim = 512;
  const HvMatrix queries = random_block(nq, dim, 0x11);
  const HvMatrix protos = random_block(np, dim, 0x12);
  const BitMatrix qbits = ops::sign_pack_matrix(queries.view());
  const BitMatrix pbits = ops::sign_pack_matrix(protos.view());
  std::vector<double> sims(nq * np);
  ops::binary_similarity_matrix(qbits.view(), pbits.view(), sims.data());
  for (std::size_t q = 0; q < nq; ++q) {
    const BinaryVector bq(queries.row(q));
    for (std::size_t p = 0; p < np; ++p) {
      EXPECT_DOUBLE_EQ(sims[q * np + p],
                       bq.similarity(BinaryVector(protos.row(p))));
    }
  }
}

TEST(BinaryModel, BatchMatchesScalarPredict) {
  const HvDataset data = separable_hv_dataset(5, 1, 12, 320, 0.5);
  OnlineHDClassifier model(5, 320);
  model.fit(data, {});
  const BinaryModel binary(model);

  const std::vector<int> batch = binary.predict_batch(data.view());
  const BitMatrix packed = ops::sign_pack_matrix(data.view());
  const std::vector<int> packed_batch = binary.predict_batch(packed.view());
  ASSERT_EQ(batch.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int scalar = binary.predict(BinaryVector(data.row(i)));
    EXPECT_EQ(batch[i], scalar);
    EXPECT_EQ(packed_batch[i], scalar);
    EXPECT_EQ(binary.predict(data.row(i)), scalar);
  }
  EXPECT_DOUBLE_EQ(binary.accuracy(data),
                   binary.evaluate(packed.view(), data.labels()));
}

// --- quantized SMORE ------------------------------------------------------

TEST(BinarySmoreModel, RequiresTrainedModel) {
  const SmoreModel model(3, 256);
  EXPECT_THROW((void)BinarySmoreModel(model), std::logic_error);
}

TEST(BinarySmoreModel, QuantizedAccuracyGapBoundOnMultiDomainData) {
  // Synthetic multi-domain dataset with controlled shift: the packed model
  // must stay within a small gap of the float model it was quantized from.
  const HvDataset data =
      separable_hv_dataset(4, 3, 25, 2048, 0.5, /*domain_skew=*/0.3);
  SmoreConfig cfg;
  cfg.domain_model.epochs = 8;
  SmoreModel model(4, 2048, cfg);
  model.fit(data);
  const SmoreEvaluation full = model.evaluate(data);

  BinarySmoreModel binary(model);
  binary.calibrate_delta_star(data, 0.05);
  const SmoreEvaluation quant = binary.evaluate(data);
  EXPECT_GT(full.accuracy, 0.9);  // the float model must be competent here
  EXPECT_GT(quant.accuracy, full.accuracy - 0.08);
  EXPECT_GE(quant.ood_rate, 0.0);
  EXPECT_LE(quant.ood_rate, 1.0);
}

TEST(BinarySmoreModel, CalibratedOodRateTracksTarget) {
  const HvDataset data =
      separable_hv_dataset(3, 3, 20, 1024, 0.4, /*domain_skew=*/0.2);
  SmoreModel model(3, 1024);
  model.fit(data);
  BinarySmoreModel binary(model);
  const double delta = binary.calibrate_delta_star(data, 0.10);
  EXPECT_EQ(delta, binary.delta_star());
  const SmoreEvaluation eval = binary.evaluate(data);
  // Quantile calibration: the in-distribution OOD rate lands near target.
  EXPECT_NEAR(eval.ood_rate, 0.10, 0.05);
}

TEST(BinarySmoreModel, PackedEntitiesAndFootprint) {
  const HvDataset data = separable_hv_dataset(4, 2, 10, 2048, 0.4, 0.2);
  SmoreModel model(4, 2048);
  model.fit(data);
  const BinarySmoreModel binary(model);
  EXPECT_EQ(binary.num_domains(), model.num_domains());
  EXPECT_EQ(binary.num_classes(), 4);
  EXPECT_EQ(binary.dim(), 2048u);
  // Descriptors K×d bits + class banks K·C×d bits.
  const std::size_t expected =
      model.num_domains() * (2048 / 8) + model.num_domains() * 4 * (2048 / 8);
  EXPECT_EQ(binary.footprint_bytes(), expected);
  // Packed bits must equal the scalar quantization of the float prototypes.
  for (std::size_t k = 0; k < model.num_domains(); ++k) {
    const BinaryVector ref(model.descriptors().descriptor(k).span());
    for (std::size_t w = 0; w < binary.descriptor_bits().words_per_row(); ++w) {
      ASSERT_EQ(binary.descriptor_bits().row(k)[w], ref.words()[w]);
    }
  }
  // Scalar predict is the batch of one.
  const std::vector<int> batch = binary.predict_batch(data.view());
  EXPECT_EQ(binary.predict(data.row(0)), batch[0]);
}

}  // namespace
}  // namespace smore
