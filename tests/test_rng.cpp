// Unit tests for the seeded RNG: determinism, distribution sanity, fork
// independence, and the shuffle/permutation helpers.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace smore {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a() == b() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(6);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScales) {
  Rng rng(7);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, IndexIsUnbiasedOverSmallRange) {
  Rng rng(8);
  std::vector<int> hist(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[rng.index(5)];
  for (const int h : hist) {
    EXPECT_NEAR(static_cast<double>(h) / n, 0.2, 0.01);
  }
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.index(17), 17u);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BipolarOnlyPlusMinusOne) {
  Rng rng(11);
  int plus = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const float b = rng.bipolar();
    EXPECT_TRUE(b == 1.0f || b == -1.0f);
    plus += b > 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(plus) / n, 0.5, 0.03);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependentOfParentConsumption) {
  // fork(tag) must depend only on current state, and distinct tags must give
  // distinct streams.
  Rng parent(13);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  EXPECT_NE(f1(), f2());
}

TEST(Rng, ForkDeterministic) {
  Rng a(14);
  Rng b(14);
  Rng fa = a.fork(9);
  Rng fb = b.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa(), fb());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, PermutationIsBijection) {
  Rng rng(16);
  const auto p = rng.permutation(100);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(17);
  const auto p = rng.permutation(50);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) fixed += p[i] == i ? 1 : 0;
  EXPECT_LT(fixed, 10u);  // overwhelmingly unlikely to keep many fixed points
}

TEST(Splitmix, KnownGolden) {
  // Reference values from the public-domain splitmix64 specification.
  std::uint64_t state = 0;
  const std::uint64_t v1 = splitmix64(state);
  EXPECT_EQ(v1, 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace smore
