// Unit tests for the nn::Tensor container and Param.

#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace smore::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  const Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
}

TEST(Tensor, ZeroInitialized) {
  const Tensor t({4, 4});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, ZeroDimensionThrows) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
}

TEST(Tensor, MatrixAccessors) {
  Tensor t = Tensor::matrix(2, 3);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t[1 * 3 + 2], 5.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
}

TEST(Tensor, CubeAccessors) {
  Tensor t = Tensor::cube(2, 3, 4);
  t.at(1, 2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t[(1 * 3 + 2) * 4 + 3], 7.0f);
}

TEST(Tensor, FillSetsAll) {
  Tensor t({3, 3});
  t.fill(2.5f);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 2.5f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::matrix(2, 6);
  for (std::size_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.rank(), 2u);
  EXPECT_EQ(r.dim(0), 3u);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(r[i], t[i]);
}

TEST(Tensor, ReshapeCountMismatchThrows) {
  const Tensor t = Tensor::matrix(2, 6);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(Tensor({2, 2}).same_shape(Tensor({2, 2})));
  EXPECT_FALSE(Tensor({2, 2}).same_shape(Tensor({4})));
}

TEST(Param, GradMatchesValueShape) {
  Param p({3, 5});
  EXPECT_TRUE(p.value.same_shape(p.grad));
  p.grad.fill(1.0f);
  p.zero_grad();
  for (std::size_t i = 0; i < p.grad.size(); ++i) {
    EXPECT_FLOAT_EQ(p.grad[i], 0.0f);
  }
}

}  // namespace
}  // namespace smore::nn
