// MultiTenantServer tests: tenant → model routing correctness, per-tenant
// failure isolation, fair admission (quota sheds the flooder, not the
// fleet), graceful cross-shard drain, and eviction safety for in-flight
// work.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

constexpr std::size_t kDim = 128;

/// Two tenants with DIFFERENT trained models (same encoder/dim, different
/// training data) so routing mistakes change answers, plus a "bad" tenant
/// whose artifact always fails to open.
class MultiTenantTest : public ::testing::Test {
 protected:
  void SetUp() override {
    windows_a_ = generate_dataset(testing::tiny_spec(3, 3, 2, 24, 30, 0x7e57));
    windows_b_ = generate_dataset(testing::tiny_spec(3, 3, 2, 24, 30, 0xb0b5));
    pipeline_a_ = make_pipeline(windows_a_);
    pipeline_b_ = make_pipeline(windows_b_);
    artifact_a_ = render(*pipeline_a_);
    artifact_b_ = render(*pipeline_b_);
    queries_ = pipeline_a_->encode(windows_a_);
    ref_a_ = pipeline_a_->predict_batch_full(windows_a_, ServeBackend::kPacked);
    ref_b_ = pipeline_b_->predict_batch_full(windows_a_, ServeBackend::kPacked);
  }

  static std::unique_ptr<Pipeline> make_pipeline(const WindowDataset& train) {
    EncoderConfig ec;
    ec.dim = kDim;
    auto p = std::make_unique<Pipeline>(
        std::make_shared<const MultiSensorEncoder>(ec), train.num_classes());
    p->fit(train);
    p->quantize();
    p->calibrate(train, 0.08);
    return p;
  }

  static std::string render(const Pipeline& p) {
    std::ostringstream buffer(std::ios::binary);
    p.save(buffer);
    return buffer.str();
  }

  /// Tenant "b" gets model B, tenants starting with "bad" fail to open,
  /// everyone else gets model A.
  [[nodiscard]] ModelRegistry::ArtifactOpener opener() const {
    return [this](const std::string& tenant) {
      if (tenant.rfind("bad", 0) == 0) {
        throw std::runtime_error("corrupt artifact for tenant " + tenant);
      }
      const std::string& bytes = tenant == "b" ? artifact_b_ : artifact_a_;
      std::istringstream in(bytes, std::ios::binary);
      return ModelSnapshot::from_artifact(in, /*version=*/1);
    };
  }

  [[nodiscard]] std::shared_ptr<ModelRegistry> make_registry(
      RegistryConfig cfg = {}) const {
    return std::make_shared<ModelRegistry>(opener(), cfg);
  }

  [[nodiscard]] std::vector<float> query(std::size_t i) const {
    const auto row = queries_.row(i);
    return {row.begin(), row.end()};
  }

  WindowDataset windows_a_;
  WindowDataset windows_b_;
  std::unique_ptr<Pipeline> pipeline_a_;
  std::unique_ptr<Pipeline> pipeline_b_;
  std::string artifact_a_;
  std::string artifact_b_;
  HvDataset queries_{kDim};
  SmoreBatchResult ref_a_;
  SmoreBatchResult ref_b_;
};

TEST_F(MultiTenantTest, RoutesEachTenantToItsOwnModel) {
  MultiTenantConfig cfg;
  cfg.num_shards = 2;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  MultiTenantServer server(make_registry(), cfg);

  // The SAME queries go to both tenants, interleaved; each must be answered
  // by its own tenant's model.
  const std::size_t n = queries_.size();
  std::vector<std::future<ServeResult>> fut_a, fut_b;
  for (std::size_t i = 0; i < n; ++i) {
    fut_a.push_back(server.submit("a", query(i)));
    fut_b.push_back(server.submit("b", query(i)));
  }
  for (std::size_t i = 0; i < n; ++i) {
    const ServeResult ra = fut_a[i].get();
    EXPECT_EQ(ra.status, ServeStatus::kOk);
    EXPECT_EQ(ra.label, ref_a_.labels[i]) << "row " << i;
    EXPECT_EQ(ra.is_ood, ref_a_.ood[i] != 0) << "row " << i;
    EXPECT_EQ(ra.snapshot_version, 1u);
    const ServeResult rb = fut_b[i].get();
    EXPECT_EQ(rb.status, ServeStatus::kOk);
    EXPECT_EQ(rb.label, ref_b_.labels[i]) << "row " << i;
  }

  const MultiTenantStats s = server.stats();
  EXPECT_EQ(s.submitted, 2 * n);
  EXPECT_EQ(s.completed, 2 * n);
  EXPECT_EQ(s.tenants_seen, 2u);
  EXPECT_EQ(s.registry.loads, 2u);  // one artifact load per tenant
  EXPECT_GE(s.mean_batch_fill, 1.0);

  const auto per_tenant = server.tenant_stats();
  ASSERT_EQ(per_tenant.size(), 2u);
  EXPECT_EQ(per_tenant[0].tenant, "a");
  EXPECT_EQ(per_tenant[0].submitted, n);
  EXPECT_EQ(per_tenant[0].completed, n);
  EXPECT_EQ(per_tenant[0].inflight, 0u);
  EXPECT_GT(per_tenant[0].queue_wait.count(), 0u);
  EXPECT_GT(per_tenant[0].service.count(), 0u);
  EXPECT_EQ(per_tenant[1].tenant, "b");
}

TEST_F(MultiTenantTest, CorruptArtifactFailsPerRequestNotProcessWide) {
  MultiTenantServer server(make_registry());
  // Blocking submit: the future carries the loader's exception.
  std::future<ServeResult> broken = server.submit("bad-deploy", query(0));
  EXPECT_THROW(broken.get(), std::runtime_error);
  // try_submit: the request was ADMITTED (not shed) — the tenant is broken,
  // which is a different signal than an overloaded queue.
  auto maybe = server.try_submit("bad-deploy", query(0));
  ASSERT_TRUE(maybe.has_value());
  EXPECT_THROW(maybe->get(), std::runtime_error);
  // The rest of the fleet is untouched.
  EXPECT_EQ(server.submit("a", query(0)).get().status, ServeStatus::kOk);
  const MultiTenantStats s = server.stats();
  EXPECT_EQ(s.load_failures, 2u);
  EXPECT_EQ(s.completed, 1u);
  const auto per_tenant = server.tenant_stats();
  ASSERT_EQ(per_tenant.size(), 2u);  // "a" and "bad-deploy"
  EXPECT_EQ(per_tenant[1].tenant, "bad-deploy");
  EXPECT_EQ(per_tenant[1].load_failures, 2u);
}

TEST_F(MultiTenantTest, QuotaShedsTheFlooderNotTheFleet) {
  MultiTenantConfig cfg;
  cfg.num_shards = 1;
  cfg.max_batch = 64;
  cfg.max_delay_us = 100000;  // 100 ms: the first batch waits, requests pile
  cfg.fair = true;
  cfg.tenant_inflight_quota = 8;
  MultiTenantServer server(make_registry(), cfg);

  // Tenant "a" floods far past its quota before any batch can complete:
  // exactly `quota` requests are admitted, the rest shed with
  // kShedTenantQuota.
  std::vector<std::future<ServeResult>> admitted;
  std::size_t quota_sheds = 0;
  for (int i = 0; i < 50; ++i) {
    ServeStatus reason = ServeStatus::kOk;
    auto fut = server.try_submit("a", query(0), &reason);
    if (fut.has_value()) {
      admitted.push_back(std::move(*fut));
    } else {
      EXPECT_EQ(reason, ServeStatus::kShedTenantQuota);
      ++quota_sheds;
    }
  }
  EXPECT_EQ(admitted.size(), cfg.tenant_inflight_quota);
  EXPECT_EQ(quota_sheds, 50 - cfg.tenant_inflight_quota);

  // Tenant "b" is under ITS OWN quota: still admitted — the flooder's
  // exhaustion sheds the flooder, not the fleet.
  auto fut_b = server.try_submit("b", query(0));
  ASSERT_TRUE(fut_b.has_value());
  EXPECT_EQ(fut_b->get().status, ServeStatus::kOk);

  for (auto& f : admitted) EXPECT_EQ(f.get().status, ServeStatus::kOk);
  const auto per_tenant = server.tenant_stats();
  EXPECT_EQ(per_tenant[0].shed_tenant_quota,
            50 - cfg.tenant_inflight_quota);
  EXPECT_EQ(per_tenant[1].shed_tenant_quota, 0u);
}

TEST_F(MultiTenantTest, UnfairModeHasNoQuota) {
  MultiTenantConfig cfg;
  cfg.num_shards = 1;
  cfg.max_batch = 64;
  cfg.max_delay_us = 100000;
  cfg.fair = false;  // throughput-greedy baseline
  cfg.tenant_inflight_quota = 8;  // ignored without fair
  MultiTenantServer server(make_registry(), cfg);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 50; ++i) {
    auto fut = server.try_submit("a", query(0));
    ASSERT_TRUE(fut.has_value()) << "request " << i;
    futures.push_back(std::move(*fut));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);
  EXPECT_EQ(server.stats().shed_tenant_quota, 0u);
}

TEST_F(MultiTenantTest, ShutdownDrainsEveryShardAndResolvesLateSubmits) {
  MultiTenantConfig cfg;
  cfg.num_shards = 4;
  cfg.max_batch = 4;
  cfg.max_delay_us = 2000;  // slow batch formation: work is pending at close
  MultiTenantServer server(make_registry(), cfg);

  // 12 tenants spread over the 4 shards, several queries each.
  std::vector<std::future<ServeResult>> futures;
  std::vector<int> expected;
  for (int t = 0; t < 12; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    for (std::size_t i = 0; i < 6; ++i) {
      futures.push_back(server.submit(tenant, query(i)));
      expected.push_back(ref_a_.labels[i]);
    }
  }
  server.shutdown();  // must drain every shard's pending groups, not drop
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResult r = futures[i].get();  // throws if a request was lost
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_EQ(r.label, expected[i]);
  }
  EXPECT_EQ(server.stats().completed, futures.size());

  // Late submits resolve on the result plane — immediately, no blocking.
  std::future<ServeResult> late = server.submit("a", query(0));
  EXPECT_EQ(late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(late.get().status, ServeStatus::kShuttingDown);
  ServeStatus reason = ServeStatus::kOk;
  EXPECT_EQ(server.try_submit("a", query(0), &reason), std::nullopt);
  EXPECT_EQ(reason, ServeStatus::kShuttingDown);
}

TEST_F(MultiTenantTest, EvictionMidFlightKeepsServingPinnedModels) {
  MultiTenantConfig cfg;
  cfg.num_shards = 1;
  cfg.max_batch = 64;
  cfg.max_delay_us = 50000;  // 50 ms: requests are in flight during evict
  MultiTenantServer server(make_registry(), cfg);

  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 20; ++i) {
    futures.push_back(server.submit("a", query(i)));
  }
  // Evict the tenant while its requests sit in the shard queue. Each
  // admitted request pinned the TenantModel at submit time, so the batch
  // serves the evicted generation safely.
  EXPECT_TRUE(server.registry().evict("a"));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResult r = futures[i].get();
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_EQ(r.label, ref_a_.labels[i]);
  }
  // The next submit reloads the artifact (cold again).
  EXPECT_EQ(server.submit("a", query(0)).get().status, ServeStatus::kOk);
  EXPECT_EQ(server.stats().registry.loads, 2u);
}

TEST_F(MultiTenantTest, DimensionMismatchThrowsAtSubmit) {
  MultiTenantServer server(make_registry());
  EXPECT_THROW(server.submit("a", std::vector<float>(kDim + 1, 0.0f)),
               std::invalid_argument);
}

TEST_F(MultiTenantTest, RedeployWithNewDimensionFailsPerRequestNotTheWorker) {
  // A redeploy can change a tenant's dimension: requests admitted before the
  // evict are pinned to the old model, requests after it to the new one, and
  // both land in the SAME tenant group of one worker batch. The mismatched
  // row must fail on its own promise — an escape would std::terminate the
  // whole fleet server.
  constexpr std::size_t kSmallDim = kDim / 2;
  EncoderConfig ec;
  ec.dim = kSmallDim;
  Pipeline small(std::make_shared<const MultiSensorEncoder>(ec),
                 windows_a_.num_classes());
  small.fit(windows_a_);
  std::ostringstream buf(std::ios::binary);
  small.save(buf);
  const std::string small_artifact = buf.str();

  auto redeployed = std::make_shared<std::atomic<bool>>(false);
  auto registry = std::make_shared<ModelRegistry>(
      [this, small_artifact, redeployed](const std::string&) {
        const std::string& bytes =
            redeployed->load() ? small_artifact : artifact_a_;
        std::istringstream in(bytes, std::ios::binary);
        return ModelSnapshot::from_artifact(in, /*version=*/1);
      });

  MultiTenantConfig cfg;
  cfg.num_shards = 1;
  cfg.workers_per_shard = 1;
  cfg.max_batch = 2;
  cfg.max_delay_us = 2000000;  // 2 s: the worker holds the batch open until
                               // the second (mismatched) request joins it
  MultiTenantServer server(std::move(registry), cfg);

  // Pins the kDim model; sits in the worker's open batch.
  std::future<ServeResult> old_gen = server.submit("a", query(0));
  // Redeploy: evict, reload at kSmallDim, submit a request validated against
  // (and pinned to) the new model. Same tenant → same batch, mixed dims.
  redeployed->store(true);
  EXPECT_TRUE(server.registry().evict("a"));
  std::future<ServeResult> new_gen =
      server.submit("a", std::vector<float>(kSmallDim, 0.0f));

  EXPECT_EQ(old_gen.get().status, ServeStatus::kOk);  // batch-dim row served
  EXPECT_THROW(new_gen.get(), std::invalid_argument);  // its own promise only
  // The worker survived; the tenant keeps serving at its new dimension.
  EXPECT_EQ(
      server.submit("a", std::vector<float>(kSmallDim, 0.0f)).get().status,
      ServeStatus::kOk);
  // The failed request released its in-flight reservation — accounting is
  // ordered before promise fulfillment, so this read is race-free.
  const auto per_tenant = server.tenant_stats();
  ASSERT_EQ(per_tenant.size(), 1u);
  EXPECT_EQ(per_tenant[0].inflight, 0u);
}

}  // namespace
}  // namespace smore
