// Pipeline facade tests: the deployable artifact must behave exactly like
// the hand-wired low-level stack (encoder + SmoreModel + BinarySmoreModel)
// it owns — facade equivalence — and its lifecycle calls must enforce their
// contracts.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using testing::tiny_spec;

constexpr std::size_t kDim = 256;

std::shared_ptr<const MultiSensorEncoder> make_test_encoder(
    std::size_t dim = kDim) {
  EncoderConfig config;
  config.dim = dim;
  return std::make_shared<const MultiSensorEncoder>(config);
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    windows_ = generate_dataset(tiny_spec());
    held_out_ = generate_dataset(tiny_spec(3, 3, 2, 24, 30, 0x0dd));
  }

  WindowDataset windows_;
  WindowDataset held_out_;
};

TEST_F(PipelineTest, FacadeMatchesTheHandWiredStack) {
  // Pipeline::fit/predict must equal: encode_dataset + SmoreModel fit +
  // predict_batch on the same encoder and config.
  const auto encoder = make_test_encoder();
  Pipeline pipeline(encoder, windows_.num_classes());
  pipeline.fit(windows_);

  const HvDataset encoded = encoder->encode_dataset(windows_);
  SmoreModel reference(windows_.num_classes(), kDim);
  reference.fit(encoded);

  const std::vector<int> via_facade = pipeline.predict_batch(windows_);
  const std::vector<int> via_stack = reference.predict_batch(encoded.view());
  EXPECT_EQ(via_facade, via_stack);

  // Scalar predict is the same batch-of-one.
  EXPECT_EQ(pipeline.predict(windows_[0]), via_stack[0]);
  const SmorePrediction detail = pipeline.predict_detail(windows_[0]);
  EXPECT_EQ(detail.label, via_stack[0]);

  // evaluate() scores against the windows' own labels.
  const SmoreEvaluation eval = pipeline.evaluate(windows_);
  EXPECT_DOUBLE_EQ(eval.accuracy, reference.evaluate(encoded).accuracy);
}

TEST_F(PipelineTest, FitEncodedEqualsFitOnWindows) {
  // The shared-encoding escape hatch trains the identical model.
  const auto encoder = make_test_encoder();
  Pipeline via_windows(encoder, windows_.num_classes());
  via_windows.fit(windows_);
  Pipeline via_encoded(encoder, windows_.num_classes());
  via_encoded.fit_encoded(via_encoded.encode(windows_));
  EXPECT_EQ(via_windows.predict_batch(windows_),
            via_encoded.predict_batch(windows_));
  // And it drops a stale quantization like fit() does.
  via_encoded.quantize();
  via_encoded.fit_encoded(via_encoded.encode(windows_));
  EXPECT_FALSE(via_encoded.quantized());
}

TEST_F(PipelineTest, QuantizeBuildsThePackedBackend) {
  Pipeline pipeline(make_test_encoder(), windows_.num_classes());
  pipeline.fit(windows_);
  EXPECT_FALSE(pipeline.quantized());
  EXPECT_EQ(pipeline.packed(), nullptr);
  EXPECT_THROW((void)pipeline.predict_batch_full(windows_,
                                                 ServeBackend::kPacked),
               std::logic_error);
  pipeline.quantize();
  ASSERT_TRUE(pipeline.quantized());
  const BinarySmoreModel reference(pipeline.model());
  const HvDataset encoded = pipeline.encode(windows_);
  EXPECT_EQ(pipeline.predict_batch(windows_, ServeBackend::kPacked),
            reference.predict_batch(encoded.view()));
}

TEST_F(PipelineTest, CalibrateSetsBothThresholds) {
  Pipeline pipeline(make_test_encoder(), windows_.num_classes());
  pipeline.fit(windows_);
  pipeline.quantize();
  const double before_packed = pipeline.packed()->delta_star();
  const double delta = pipeline.calibrate(windows_, 0.10);
  EXPECT_DOUBLE_EQ(pipeline.model().config().delta_star, delta);
  // The packed threshold is re-derived on the Hamming scale — it moves too
  // (it almost surely differs from the transferred float δ*).
  EXPECT_NE(pipeline.packed()->delta_star(), before_packed);
  // ~10% of the calibration set must now be flagged by the float detector.
  const SmoreEvaluation eval = pipeline.evaluate(windows_);
  EXPECT_NEAR(eval.ood_rate, 0.10, 0.06);
  const SmoreEvaluation packed_eval =
      pipeline.evaluate(windows_, ServeBackend::kPacked);
  EXPECT_NEAR(packed_eval.ood_rate, 0.10, 0.06);
}

TEST_F(PipelineTest, QuantizeAfterCalibrateFlagsTheStaleThreshold) {
  // The calibrate-then-quantize order discards the calibration: the fresh
  // packed model carries the cosine-scale float δ*, which over-flags on the
  // Hamming scale. The pipeline must refuse to ship that state.
  Pipeline pipeline(make_test_encoder(), windows_.num_classes());
  pipeline.fit(windows_);
  pipeline.calibrate(windows_, 0.05);
  EXPECT_FALSE(pipeline.packed_calibration_stale());
  pipeline.quantize();
  EXPECT_TRUE(pipeline.packed_calibration_stale());
  std::stringstream buffer;
  EXPECT_THROW(pipeline.save(buffer), std::logic_error);
  // calibrate() repairs it (the canonical quantize-then-calibrate order).
  pipeline.calibrate(windows_, 0.05);
  EXPECT_FALSE(pipeline.packed_calibration_stale());
  std::stringstream ok;
  pipeline.save(ok);
  EXPECT_TRUE(Pipeline::load(ok).quantized());
  // quantize() with no prior calibration transfers the float δ* by design
  // (documented approximation) — not flagged.
  Pipeline plain(make_test_encoder(), windows_.num_classes());
  plain.fit(windows_);
  plain.quantize();
  EXPECT_FALSE(plain.packed_calibration_stale());
}

TEST_F(PipelineTest, RefitDropsTheStaleQuantization) {
  Pipeline pipeline(make_test_encoder(), windows_.num_classes());
  pipeline.fit(windows_);
  pipeline.quantize();
  ASSERT_TRUE(pipeline.quantized());
  pipeline.fit(windows_);  // packed model described the old weights
  EXPECT_FALSE(pipeline.quantized());
}

TEST_F(PipelineTest, LifecycleContracts) {
  EXPECT_THROW(Pipeline(nullptr, 3), std::invalid_argument);
  Pipeline pipeline(make_test_encoder(), windows_.num_classes());
  EXPECT_FALSE(pipeline.trained());
  EXPECT_THROW((void)pipeline.predict(windows_[0]), std::logic_error);
  EXPECT_THROW(pipeline.quantize(), std::logic_error);
  EXPECT_THROW(pipeline.calibrate(windows_), std::logic_error);
  std::stringstream buffer;
  EXPECT_THROW(pipeline.save(buffer), std::logic_error);
  EXPECT_EQ(pipeline.dim(), kDim);
  EXPECT_EQ(pipeline.num_classes(), windows_.num_classes());
}

TEST_F(PipelineTest, EncoderIsShared) {
  const auto encoder = make_test_encoder();
  Pipeline pipeline(encoder, windows_.num_classes());
  EXPECT_EQ(pipeline.encoder_ptr().get(), encoder.get());
  // 1 local + 1 pipeline.
  EXPECT_EQ(encoder.use_count(), 2);
}

TEST_F(PipelineTest, HeldOutDomainIsFlaggedMoreThanTraining) {
  // Sanity of the end-to-end facade on the paper's actual mechanism: an
  // unseen population shifted far from training trips the detector more
  // often than the training windows do.
  Pipeline pipeline(make_test_encoder(), windows_.num_classes());
  pipeline.fit(windows_);
  pipeline.calibrate(windows_, 0.05);
  SyntheticSpec shifted = tiny_spec();
  shifted.domain_shift = 6.0;
  shifted.seed = 0xd15;
  const SmoreEvaluation in_dist = pipeline.evaluate(windows_);
  const SmoreEvaluation out_dist =
      pipeline.evaluate(generate_dataset(shifted));
  EXPECT_GT(out_dist.ood_rate, in_dist.ood_rate);
}

}  // namespace
}  // namespace smore
