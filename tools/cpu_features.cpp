// cpu_features: print the detected host CPU capability mask and the kernel
// variant the runtime dispatch layer (DESIGN.md §11) resolved for each hot
// kernel slot. The CI artifact jobs log this so every run records which
// code paths actually executed; it is also the first triage step for any
// "is this binary using AVX-512?" question. Honors SMORE_KERNEL, so
//   SMORE_KERNEL=sse2 cpu_features
// shows exactly what a forced tier would run.

#include <cstdio>

#include "hdc/dispatch.hpp"

int main() {
  const auto& d = smore::kern::dispatch();

  std::printf("cpu features : %s\n", smore::to_string(d.features).c_str());
  std::printf("dispatch tier: %s%s%s\n", smore::kern::tier_name(d.tier),
              d.forced ? " (forced via SMORE_KERNEL)" : "",
              d.clamped ? " (CLAMPED: requested tier not executable here)"
                        : "");
  std::printf("build        : %s\n",
#if defined(SMORE_NATIVE_ARCH_BUILD)
              "-march=native (SMORE_NATIVE_ARCH=ON; not portable)"
#else
              "fat binary (portable baseline + runtime-dispatched kernels)"
#endif
  );
  std::printf("compiled-in tiers:");
  for (int t = 0; t < smore::kern::kNumTiers; ++t) {
    const auto tier = static_cast<smore::kern::IsaTier>(t);
    if (!smore::kern::tier_compiled(tier)) continue;
    std::printf(" %s%s", smore::kern::tier_name(tier),
                smore::kern::tier_supported(tier) ? "" : "(unsupported)");
  }
  std::printf("\n\n%-20s %s\n", "kernel", "variant");
  for (std::size_t k = 0; k < smore::kern::kNumKernels; ++k) {
    const auto kernel = static_cast<smore::kern::Kernel>(k);
    std::printf("%-20s %s\n", smore::kern::kernel_name(kernel),
                d.kernel_variant[k] ? d.kernel_variant[k] : "?");
  }
  return 0;
}
