// fleet_top: top-like operator view over the telemetry JSON snapshot
// (DESIGN.md §14).
//
// The serving stack has no HTTP endpoint by design; its export transport is
// a JSON file written atomically (MultiTenantConfig::export_path, or any
// call to write_telemetry / obs::snapshot_json_text). This tool tails that
// file and renders the fleet dashboard: plane counters, a per-tenant table,
// the slowest-request spans, and the recent event log.
//
//   ./build/tool_fleet_top --file=telemetry.json            # watch (1 Hz)
//   ./build/tool_fleet_top --file=telemetry.json --once     # one frame
//   ./build/tool_fleet_top --file=telemetry.json --format=json
//   ./build/tool_fleet_top --demo --once                    # no file handy:
//       run a miniature two-tenant fleet in-process, export a REAL snapshot,
//       and render it — the CI smoke path exercises export + parse + render
//       end to end.
//
//   --interval-ms=1000   re-read cadence in watch mode
//   --slowest=10         rows in the slowest-requests table
//   --events=10          rows in the event table

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "util/cli.hpp"

namespace {
using namespace smore;
using obs::JsonValue;

/// Counter/gauge value of the metric matching `name` and every (k,v) label
/// filter; 0 when absent.
double metric_value(const JsonValue& doc, std::string_view name,
                    const std::vector<std::pair<std::string, std::string>>&
                        label_filter = {}) {
  for (const JsonValue& m : doc.at("metrics").items()) {
    if (m.at("name").as_string() != name) continue;
    bool match = true;
    for (const auto& [k, v] : label_filter) {
      if (m.at("labels").at(k).as_string() != v) {
        match = false;
        break;
      }
    }
    if (match) return m.at("value").as_double();
  }
  return 0.0;
}

/// The histogram metric matching name+labels (for p50/p99 keys); null when
/// absent.
const JsonValue* metric_hist(const JsonValue& doc, std::string_view name,
                             const std::vector<std::pair<std::string,
                                                         std::string>>&
                                 label_filter) {
  for (const JsonValue& m : doc.at("metrics").items()) {
    if (m.at("name").as_string() != name) continue;
    bool match = true;
    for (const auto& [k, v] : label_filter) {
      if (m.at("labels").at(k).as_string() != v) {
        match = false;
        break;
      }
    }
    if (match) return &m;
  }
  return nullptr;
}

/// Sum across all series of one family that carry label `key` == `value`.
double metric_sum(const JsonValue& doc, std::string_view name,
                  const std::string& key, const std::string& value) {
  double sum = 0.0;
  for (const JsonValue& m : doc.at("metrics").items()) {
    if (m.at("name").as_string() != name) continue;
    if (m.at("labels").at(key).as_string() != value) continue;
    sum += m.at("value").as_double();
  }
  return sum;
}

void render(const JsonValue& doc, const std::string& source,
            std::size_t slowest_rows, std::size_t event_rows) {
  std::printf("SMORE fleet telemetry — %s  (%s)\n",
              doc.at("schema").as_string().c_str(), source.c_str());
  std::printf("observed requests: %.0f    events emitted: %.0f\n\n",
              doc.at("observed_requests").as_double(),
              doc.at("events_emitted").as_double());

  // Plane table: one row per distinct {plane=...} of the submitted counter.
  std::vector<std::string> planes;
  for (const JsonValue& m : doc.at("metrics").items()) {
    if (m.at("name").as_string() != "smore_requests_submitted_total") continue;
    planes.push_back(m.at("labels").at("plane").as_string());
  }
  std::printf("%-8s %10s %10s %9s %8s %6s %9s %9s %9s\n", "PLANE", "submit",
              "complete", "rejected", "batches", "fill", "p50 ms", "p99 ms",
              "tier");
  for (const std::string& plane : planes) {
    const std::vector<std::pair<std::string, std::string>> l{{"plane", plane}};
    const double submitted =
        metric_value(doc, "smore_requests_submitted_total", l);
    const double completed =
        metric_value(doc, "smore_requests_completed_total", l);
    const double rejected =
        metric_value(doc, "smore_requests_rejected_total", l);
    const double batches = metric_value(doc, "smore_batches_total", l);
    const double rows = metric_value(doc, "smore_batched_rows_total", l);
    const JsonValue* lat =
        metric_hist(doc, "smore_request_latency_seconds", l);
    std::string tier = "-";
    for (const JsonValue& m : doc.at("metrics").items()) {
      if (m.at("name").as_string() == "smore_kernel_tier_info" &&
          m.at("labels").at("plane").as_string() == plane) {
        tier = m.at("labels").at("tier").as_string();
      }
    }
    std::printf("%-8s %10.0f %10.0f %9.0f %8.0f %6.1f %9.3f %9.3f %9s\n",
                plane.c_str(), submitted, completed, rejected, batches,
                batches > 0 ? rows / batches : 0.0,
                lat != nullptr ? lat->at("p50").as_double() * 1e3 : 0.0,
                lat != nullptr ? lat->at("p99").as_double() * 1e3 : 0.0,
                tier.c_str());
  }

  // Tenant table: one row per distinct {tenant=...} of the tenant submitted
  // counter, sorted (std::map) so the render is stable frame to frame.
  std::map<std::string, bool> tenants;
  for (const JsonValue& m : doc.at("metrics").items()) {
    if (m.at("name").as_string() != "smore_tenant_submitted_total") continue;
    tenants[m.at("labels").at("tenant").as_string()] = true;
  }
  if (!tenants.empty()) {
    std::printf("\n%-12s %9s %9s %7s %7s %7s %7s %9s %9s\n", "TENANT",
                "submit", "complete", "shed", "loadf", "ood", "adapt",
                "p50 ms", "p99 ms");
    for (const auto& [tenant, unused] : tenants) {
      (void)unused;
      const std::vector<std::pair<std::string, std::string>> l{
          {"tenant", tenant}};
      const JsonValue* lat =
          metric_hist(doc, "smore_tenant_latency_seconds", l);
      std::printf(
          "%-12s %9.0f %9.0f %7.0f %7.0f %7.0f %7.0f %9.3f %9.3f\n",
          tenant.c_str(),
          metric_value(doc, "smore_tenant_submitted_total", l),
          metric_value(doc, "smore_tenant_completed_total", l),
          metric_sum(doc, "smore_tenant_shed_total", "tenant", tenant),
          metric_value(doc, "smore_tenant_load_failures_total", l),
          metric_value(doc, "smore_tenant_ood_flagged_total", l),
          metric_value(doc, "smore_tenant_adaptation_rounds_total", l),
          lat != nullptr ? lat->at("p50").as_double() * 1e3 : 0.0,
          lat != nullptr ? lat->at("p99").as_double() * 1e3 : 0.0);
    }
  }

  // Registry residency line (present when a ModelRegistry shares the hub).
  const double resident =
      metric_value(doc, "smore_registry_resident_tenants");
  const double loads = metric_value(doc, "smore_registry_loads_total");
  if (resident > 0 || loads > 0) {
    std::printf(
        "\nregistry: %.0f resident (%.1f MiB, peak %.1f MiB), "
        "%.0f loads, %.0f evictions, %.0f load failures\n",
        resident,
        metric_value(doc, "smore_registry_resident_bytes") / (1024.0 * 1024.0),
        metric_value(doc, "smore_registry_peak_resident_bytes") /
            (1024.0 * 1024.0),
        loads, metric_value(doc, "smore_registry_evictions_total"),
        metric_value(doc, "smore_registry_load_failures_total"));
  }

  const JsonValue& slowest = doc.at("slowest_requests");
  if (slowest.size() != 0) {
    std::printf("\nSLOWEST %-10s %5s %5s %9s %9s %9s %9s %9s %5s\n", "tenant",
                "shard", "rows", "total ms", "queue", "encode", "predict",
                "fulfill", "ver");
    for (std::size_t i = 0; i < slowest.size() && i < slowest_rows; ++i) {
      const JsonValue& t = slowest.at(i);
      const std::string& tenant = t.at("tenant").as_string();
      std::printf("        %-10s %5.0f %5.0f %9.3f %9.3f %9.3f %9.3f %9.3f "
                  "%5.0f\n",
                  tenant.empty() ? "-" : tenant.c_str(),
                  t.at("shard").as_double(), t.at("batch_rows").as_double(),
                  t.at("total_ms").as_double(), t.at("queue_ms").as_double(),
                  t.at("encode_ms").as_double(),
                  t.at("predict_ms").as_double(),
                  t.at("fulfill_ms").as_double(),
                  t.at("snapshot_version").as_double());
    }
  }

  const JsonValue& events = doc.at("events");
  if (events.size() != 0) {
    std::printf("\nEVENTS  %-18s %-14s %-16s %8s\n", "type", "scope",
                "reason", "value");
    const std::size_t start =
        events.size() > event_rows ? events.size() - event_rows : 0;
    for (std::size_t i = start; i < events.size(); ++i) {
      const JsonValue& e = events.at(i);
      std::printf("        %-18s %-14s %-16s %8.0f\n",
                  e.at("type").as_string().c_str(),
                  e.at("scope").as_string().c_str(),
                  e.at("reason").as_string().c_str(),
                  e.at("value").as_double());
    }
  }
  std::printf("\n");
}

/// --demo: run a miniature two-tenant fleet end to end and export a real
/// snapshot, so the render path can be exercised with no server around.
std::string run_demo(const std::string& out_path) {
  SyntheticSpec spec;
  spec.name = "demo";
  spec.activities = 3;
  spec.subjects = 2;
  spec.subject_to_domain = {0, 1};
  spec.channels = 2;
  spec.window_steps = 24;
  spec.sample_rate_hz = 25.0;
  spec.domain_counts = {24, 24};
  spec.seed = 0xf1ee7;
  const WindowDataset windows = generate_dataset(spec);

  EncoderConfig ec;
  ec.dim = 256;
  Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                    windows.num_classes());
  pipeline.fit(windows);
  pipeline.quantize();
  pipeline.calibrate(windows, 0.08);
  std::ostringstream buffer(std::ios::binary);
  pipeline.save(buffer);
  const std::string artifact = buffer.str();

  const auto hub = obs::Telemetry::make();
  RegistryConfig rc;
  rc.telemetry = hub;
  auto registry = std::make_shared<ModelRegistry>(
      [artifact](const std::string& tenant) {
        if (tenant.rfind("bad", 0) == 0) {
          throw std::runtime_error("demo: corrupt artifact for " + tenant);
        }
        std::istringstream in(artifact, std::ios::binary);
        return ModelSnapshot::from_artifact(in, /*version=*/1);
      },
      rc);
  MultiTenantConfig mc;
  mc.num_shards = 2;
  mc.max_batch = 8;
  mc.telemetry = hub;
  {
    MultiTenantServer server(registry, mc);
    const HvDataset queries = pipeline.encode(windows);
    std::vector<std::future<ServeResult>> futures;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto row = queries.row(i);
      std::vector<float> hv(row.begin(), row.end());
      futures.push_back(
          server.submit(i % 2 == 0 ? "alpha" : "beta", std::move(hv)));
    }
    for (auto& f : futures) (void)f.get();
    try {
      (void)server.submit("bad-tenant", std::vector<float>(256, 0.0f)).get();
    } catch (const std::exception&) {
      // expected: the demo wants one load-failure row in the dashboard
    }
    if (!server.write_telemetry(out_path)) {
      throw std::runtime_error("demo: cannot write " + out_path);
    }
  }
  return out_path;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "fleet_top: render the SMORE serving telemetry snapshot (top-like)");
  cli.flag_string("file", "", "telemetry JSON snapshot to watch")
      .flag_bool("once", false, "render one frame and exit")
      .flag_bool("demo", false,
                 "run a miniature in-process fleet and render its snapshot")
      .flag_string("demo-out", "fleet_top_demo.json",
                   "where --demo writes its snapshot")
      .flag_string("format", "top", "top | json (raw pretty-printed doc)")
      .flag_int("interval-ms", 1000, "re-read cadence in watch mode")
      .flag_int("slowest", 10, "rows in the slowest-requests table")
      .flag_int("events", 10, "rows in the event table");
  if (!cli.parse(argc, argv)) return 1;

  std::string path = cli.get_string("file");
  const bool demo = cli.get_bool("demo");
  try {
    if (demo) path = run_demo(cli.get_string("demo-out"));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet_top: demo failed: %s\n", e.what());
    return 1;
  }
  if (path.empty()) {
    std::fprintf(stderr, "fleet_top: --file is required (or use --demo)\n");
    return 1;
  }
  const bool once = cli.get_bool("once") || demo;
  const auto interval = std::chrono::milliseconds(
      std::max<std::int64_t>(1, cli.get_int("interval-ms")));
  const auto slowest_rows =
      static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("slowest")));
  const auto event_rows =
      static_cast<std::size_t>(std::max<std::int64_t>(0, cli.get_int("events")));

  for (;;) {
    const std::optional<std::string> text = read_file(path);
    if (!text.has_value()) {
      std::fprintf(stderr, "fleet_top: cannot read %s\n", path.c_str());
      return 1;
    }
    std::string error;
    const std::optional<obs::JsonValue> doc =
        obs::JsonValue::parse(*text, &error);
    if (!doc.has_value()) {
      std::fprintf(stderr, "fleet_top: %s is not a telemetry snapshot: %s\n",
                   path.c_str(), error.c_str());
      return 1;
    }
    if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home between frames
    if (cli.get_string("format") == "json") {
      std::printf("%s\n", doc->dump(2).c_str());
    } else {
      render(*doc, path, slowest_rows, event_rows);
    }
    if (once) return 0;
    std::this_thread::sleep_for(interval);
  }
}
