// Cross-process/cross-host artifact verification tool (the CI round-trip
// jobs drive this; DESIGN.md §10).
//
//   --save:   deterministically generate a dataset, fit + calibrate +
//             quantize a Pipeline, write the .smore artifact AND an
//             expectation file holding the per-query outputs of BOTH
//             backends on a fixed probe set.
//   --verify: in a fresh process (on CI: a different machine), load the
//             artifact, regenerate the same probe deterministically, and
//             compare every label/OOD verdict (exactly) and every δ_max
//             (within a tiny tolerance for cross-host FP differences).
//
// Any accidental change to the artifact format, the encoder reconstruction,
// or the serialized model state shows up here as a verification failure —
// before a deployment ever sees it.
//
//   ./build/tool_artifact_roundtrip --save   --artifact=m.smore --expect=e.bin
//   ./build/tool_artifact_roundtrip --verify --artifact=m.smore --expect=e.bin

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "util/cli.hpp"
#include "util/serial.hpp"

namespace {
using namespace smore;

constexpr std::uint32_t kExpectMagic = 0x45585054;  // "EXPT"
constexpr double kSimilarityTolerance = 1e-6;

/// The fixed training/probe workload: everything derives from constants so
/// --save and --verify agree across processes and hosts.
struct Workload {
  WindowDataset train;
  WindowDataset probe;
};

Workload make_workload() {
  SyntheticSpec spec;
  spec.name = "artifact-roundtrip";
  spec.activities = 4;
  spec.subjects = 3;
  spec.subject_to_domain = {0, 1, 2};
  spec.channels = 3;
  spec.window_steps = 32;
  spec.sample_rate_hz = 50.0;
  spec.domain_counts = {60, 60, 60};
  spec.domain_shift = 1.0;
  spec.seed = 0xa27e;
  const WindowDataset all = generate_dataset(spec);
  const Split fold = lodo_split(all, 2);
  return {take(all, fold.train), take(all, fold.test)};
}

/// Expectation record: for each backend, labels + ood (exact) and δ_max.
void write_expectations(const std::string& path, const Pipeline& pipeline,
                        const WindowDataset& probe) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  serial::write_pod(out, kExpectMagic);
  for (const ServeBackend backend : {ServeBackend::kFloat,
                                     ServeBackend::kPacked}) {
    const SmoreBatchResult r = pipeline.predict_batch_full(probe, backend);
    serial::write_pod(out, static_cast<std::uint64_t>(r.labels.size()));
    serial::write_pod(out, static_cast<std::uint64_t>(r.num_domains));
    for (const int label : r.labels) {
      serial::write_pod(out, static_cast<std::int32_t>(label));
    }
    for (const std::uint8_t o : r.ood) serial::write_pod(out, o);
    for (const double s : r.max_similarity) serial::write_pod(out, s);
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

int verify_expectations(const std::string& path, const Pipeline& pipeline,
                        const WindowDataset& probe) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  constexpr const char* ctx = "expectations";
  if (serial::read_pod<std::uint32_t>(in, ctx) != kExpectMagic) {
    throw std::runtime_error("expectations: bad magic");
  }
  std::size_t mismatches = 0;
  for (const ServeBackend backend : {ServeBackend::kFloat,
                                     ServeBackend::kPacked}) {
    const char* name = backend == ServeBackend::kFloat ? "float" : "packed";
    const SmoreBatchResult r = pipeline.predict_batch_full(probe, backend);
    const auto n = serial::read_pod<std::uint64_t>(in, ctx);
    const auto k = serial::read_pod<std::uint64_t>(in, ctx);
    if (n != r.labels.size() || k != r.num_domains) {
      std::fprintf(stderr, "[%s] arity mismatch: expected %llu queries / "
                   "%llu domains, got %zu / %zu\n",
                   name, static_cast<unsigned long long>(n),
                   static_cast<unsigned long long>(k), r.labels.size(),
                   r.num_domains);
      return 1;
    }
    std::vector<std::int32_t> labels(n);
    for (auto& l : labels) l = serial::read_pod<std::int32_t>(in, ctx);
    std::vector<std::uint8_t> ood(n);
    for (auto& o : ood) o = serial::read_pod<std::uint8_t>(in, ctx);
    std::vector<double> sims(n);
    for (auto& s : sims) s = serial::read_pod<double>(in, ctx);
    for (std::size_t i = 0; i < n; ++i) {
      const bool bad_label = labels[i] != r.labels[i];
      const bool bad_ood = ood[i] != r.ood[i];
      const bool bad_sim =
          std::abs(sims[i] - r.max_similarity[i]) > kSimilarityTolerance;
      if (bad_label || bad_ood || bad_sim) {
        ++mismatches;
        if (mismatches <= 5) {
          std::fprintf(stderr,
                       "[%s] query %zu: label %d/%d ood %u/%u dmax %.9f/%.9f\n",
                       name, i, labels[i], r.labels[i], ood[i], r.ood[i],
                       sims[i], r.max_similarity[i]);
        }
      }
    }
    std::printf("[%s] %llu queries verified\n", name,
                static_cast<unsigned long long>(n));
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "FAILED: %zu mismatching queries\n", mismatches);
    return 1;
  }
  std::printf("artifact round-trip verified: all predictions match\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace smore;

  CliParser cli("Train/verify a .smore Pipeline artifact across processes "
                "(the CI cross-job round-trip).");
  cli.flag_bool("save", false, "train and write artifact + expectations")
      .flag_bool("verify", false, "load artifact and verify expectations")
      .flag_string("artifact", "model.smore", "artifact path")
      .flag_string("expect", "expected.bin", "expectations path")
      .flag_int("dim", 1024, "hyperdimension (save only)");
  if (!cli.parse(argc, argv)) return 1;
  const std::string artifact_path = cli.get_string("artifact");
  const std::string expect_path = cli.get_string("expect");

  const Workload workload = make_workload();

  if (cli.get_bool("save")) {
    EncoderConfig ec;
    ec.dim = static_cast<std::size_t>(cli.get_int("dim"));
    ec.seed = 0x5304e;
    Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                      workload.train.num_classes());
    pipeline.fit(workload.train);
    pipeline.quantize();
    pipeline.calibrate(workload.train, 0.05);  // both scales, after quantize
    pipeline.save(artifact_path);
    write_expectations(expect_path, pipeline, workload.probe);
    std::printf("saved %s (+ %s): d=%zu, %zu domains, %d classes, "
                "%zu probe windows\n",
                artifact_path.c_str(), expect_path.c_str(), pipeline.dim(),
                pipeline.num_domains(), pipeline.num_classes(),
                workload.probe.size());
    return 0;
  }
  if (cli.get_bool("verify")) {
    const Pipeline pipeline = Pipeline::load(artifact_path);
    if (!pipeline.quantized()) {
      std::fprintf(stderr, "artifact lost its packed section\n");
      return 1;
    }
    return verify_expectations(expect_path, pipeline, workload.probe);
  }
  std::fprintf(stderr, "pass --save or --verify\n");
  return 1;
}
