#!/usr/bin/env python3
"""Repo-invariant linter: contracts no off-the-shelf tool knows (DESIGN.md §15).

Five rules, each a build failure in the static-analysis CI job:

  INV-A  arch confinement   Arch-specific intrinsics, arch test macros, and
                            per-file -march/-m<ext> flags stay inside
                            src/hdc/kernels/ (the PR 6 fat-binary rule: one
                            binary carries every variant, dispatch picks at
                            runtime). The CpuFeatures detector may TEST arch
                            macros but never use intrinsics.
  INV-B  event emission     obs::EventLog emission (emit with an EventType
                            literal) only from the approved decision-layer
                            call sites — the exactly-one-event-per-decision
                            contract.
  INV-C  accounting first   In src/serve/, any function fulfilling a request
                            promise (set_value/set_exception) must carry its
                            accounting (record_batch / record_shed /
                            record_load_failure / inflight release / shed
                            counters) — the accounting-before-fulfillment
                            rule. Ready-future helpers are allowlisted.
  INV-D  lock discipline    No bare std::mutex / std::condition_variable /
                            std:: lock RAII / std::thread in src/ outside the
                            allowlist: locks go through the annotated
                            util/mutex.hpp wrappers (so clang -Wthread-safety
                            sees them), threads through ThreadPool or the two
                            serving planes. SMORE_NO_THREAD_SAFETY_ANALYSIS
                            is wrapper-internals-only.
  INV-E  include hygiene    Every header starts with #pragma once; no
                            parent-relative ("../") includes; no <bits/...>.

Allowlist changes ride in the PR that needs them, next to the justifying
comment in this file — see DESIGN.md §15 "changing an invariant".

Exit status: 0 when clean, 1 with one "INV-x path:line message" per finding.
"""

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------- allowlists

# INV-A: the only TUs that may contain SIMD intrinsics / include intrinsic
# headers. Per-file arch flags in CMakeLists.txt are confined to this tree.
KERNEL_TU_DIR = "src/hdc/kernels"
# The runtime detector tests arch macros (never intrinsics) to know what the
# *compiler* targeted; the resolver and detector carry a plain baseline pin
# so a migrated binary can fall back before any wide instruction runs.
ARCH_MACRO_FILES = {"src/util/cpu_features.cpp"}
BASELINE_PIN_FILES = {"src/util/cpu_features.cpp", "src/hdc/dispatch.cpp"}

# INV-B: the decision layers. Each file emits exactly the events for the
# decisions IT makes (publish, shed, evict, load, lifecycle); src/obs is the
# event plumbing itself.
EMIT_FILES = {
    "src/serve/server.cpp",
    "src/serve/router.cpp",
    "src/serve/registry.cpp",
    "src/serve/adaptation.cpp",
    "src/serve/telemetry.cpp",
}
EMIT_DIRS = ("src/obs/",)

# INV-C: helpers that RETURN an already-fulfilled future to a caller that has
# already done the accounting (the shed/load-failure paths in do_submit).
FULFILL_HELPER_NAMES = ("ready_status", "ready_error")
ACCOUNTING_TOKENS = (
    "record_batch(",
    "record_shed(",
    "record_load_failure(",
    ".fetch_sub(",        # inflight quota release
    "adapt_dropped->add(",
)

# INV-D: the annotated wrappers themselves, and where raw std::thread is the
# point (worker pools own their join lifecycle; everything else uses them).
BARE_LOCK_FILES = {"src/util/mutex.hpp"}
BARE_THREAD_FILES = {
    "src/util/thread_pool.hpp",
    "src/util/thread_pool.cpp",
    "src/serve/server.hpp",
    "src/serve/server.cpp",
    "src/serve/router.hpp",
    "src/serve/router.cpp",
}
NO_ANALYSIS_FILES = {"src/util/annotations.hpp", "src/util/mutex.hpp"}

# ----------------------------------------------------------------- scanning

INTRINSIC_RE = re.compile(
    r"#\s*include\s*<(?:immintrin|emmintrin|x86intrin|xmmintrin|arm_neon)\.h>"
    r"|\b_mm\d*_\w+|\bvld\dq?_|\bvst\dq?_"
)
ARCH_MACRO_RE = re.compile(
    r"__AVX512\w*__|__AVX2?__|__SSE\d?_?_|__ARM_NEON\b|__FMA__"
)
EMIT_RE = re.compile(r"\bemit\s*\(\s*(?:obs\s*::\s*)?EventType\s*::")
FULFILL_RE = re.compile(r"\.\s*set_(?:value|exception)\s*\(")
BARE_LOCK_RE = re.compile(
    r"std\s*::\s*(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|scoped_lock|unique_lock|lock_guard|shared_lock)\b"
)
BARE_THREAD_RE = re.compile(r"std\s*::\s*thread\b(?!\s*::)")
NO_ANALYSIS_RE = re.compile(r"\bSMORE_NO_THREAD_SAFETY_ANALYSIS\b")
PARENT_INCLUDE_RE = re.compile(r"#\s*include\s*\"\.\./")
BITS_INCLUDE_RE = re.compile(r"#\s*include\s*<bits/")
# A top-level definition in clang-format'd sources starts at column 0 with an
# identifier character; preprocessor lines, braces, and namespace/using
# scaffolding do not open a new function segment.
FUNC_BOUNDARY_RE = re.compile(r"^[A-Za-z_](?!amespace\b)")
CMAKE_TU_FLAGS_RE = re.compile(r"smore_tu_flags\(\s*([^\s)]+)((?:[^)])*)\)")


def strip_code(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    reported line numbers match the original file."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"' or (c == "'" and not (i > 0 and text[i - 1].isalnum())):
            # The isalnum guard keeps digit separators (1'000'000) out of the
            # char-literal path.
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def findings_for_pattern(pattern, stripped, rel, rule, message):
    out = []
    for m in pattern.finditer(stripped):
        line = stripped.count("\n", 0, m.start()) + 1
        out.append((rule, rel, line, message))
    return out


# -------------------------------------------------------------------- rules


def rule_a_sources(rel, stripped):
    out = []
    if rel.startswith(KERNEL_TU_DIR + "/"):
        return out
    out += findings_for_pattern(
        INTRINSIC_RE, stripped, rel, "INV-A",
        "SIMD intrinsics are confined to src/hdc/kernels/ variant TUs "
        "(fat-binary rule; add a kernel slot + dispatch entry instead)")
    if rel not in ARCH_MACRO_FILES:
        out += findings_for_pattern(
            ARCH_MACRO_RE, stripped, rel, "INV-A",
            "arch test macros are confined to src/hdc/kernels/ and the "
            "CpuFeatures detector (dispatch on cpu_features at runtime)")
    return out


def rule_a_cmake(root):
    out = []
    cmake = root / "CMakeLists.txt"
    if not cmake.is_file():
        return out
    raw = cmake.read_text(encoding="utf-8", errors="replace")
    text = "\n".join(line.split("#", 1)[0] for line in raw.splitlines())
    for m in CMAKE_TU_FLAGS_RE.finditer(text):
        path = (m.group(1)
                .replace("${SMORE_X86_BASE}", "src")
                .replace("${CMAKE_CURRENT_SOURCE_DIR}/", ""))
        flags = m.group(2).split()
        line = text.count("\n", 0, m.start()) + 1
        if path.startswith(KERNEL_TU_DIR + "/"):
            continue
        ext_flags = [f for f in flags
                     if f.startswith("-m") and f != "-march=x86-64"]
        if ext_flags:
            out.append(("INV-A", "CMakeLists.txt", line,
                        f"per-file arch flags {ext_flags} on {path}: ISA "
                        "extensions are confined to src/hdc/kernels/ TUs"))
        elif path not in BASELINE_PIN_FILES:
            out.append(("INV-A", "CMakeLists.txt", line,
                        f"per-file -march pin on {path}: only the detector/"
                        "resolver baseline pins are allowlisted"))
    return out


def rule_b(rel, stripped):
    if rel in EMIT_FILES or rel.startswith(EMIT_DIRS):
        return []
    return findings_for_pattern(
        EMIT_RE, stripped, rel, "INV-B",
        "EventLog emission outside the approved decision-layer call sites "
        "(exactly-one-event contract: the layer that decides, emits)")


def rule_c(rel, stripped):
    if not (rel.startswith("src/serve/") and rel.endswith(".cpp")):
        return []
    out = []
    lines = stripped.split("\n")
    seg_header = ""
    seg_has_accounting = False
    pending = []  # fulfillment lines in the current segment
    def flush():
        nonlocal pending
        if pending and not seg_has_accounting and \
                not any(h in seg_header for h in FULFILL_HELPER_NAMES):
            for ln in pending:
                out.append(("INV-C", rel, ln,
                            "promise fulfilled in a function with no "
                            "accounting call (accounting-before-fulfillment: "
                            "record_* / quota release must live in the same "
                            "function, or the helper joins the allowlist)"))
        pending = []
    for idx, line in enumerate(lines, start=1):
        if FUNC_BOUNDARY_RE.match(line):
            flush()
            seg_header = line
            seg_has_accounting = False
        if any(tok in line for tok in ACCOUNTING_TOKENS):
            seg_has_accounting = True
        if FULFILL_RE.search(line):
            pending.append(idx)
    flush()
    return out


def rule_d(rel, stripped):
    out = []
    if rel not in BARE_LOCK_FILES:
        out += findings_for_pattern(
            BARE_LOCK_RE, stripped, rel, "INV-D",
            "bare std lock primitive: use the annotated Mutex/MutexLock/"
            "CondVar wrappers (util/mutex.hpp) so clang -Wthread-safety "
            "can check the lock discipline")
    if rel not in BARE_THREAD_FILES:
        out += findings_for_pattern(
            BARE_THREAD_RE, stripped, rel, "INV-D",
            "bare std::thread: use ThreadPool (or join the allowlist with "
            "an owned join lifecycle)")
    if rel not in NO_ANALYSIS_FILES:
        out += findings_for_pattern(
            NO_ANALYSIS_RE, stripped, rel, "INV-D",
            "NO_THREAD_SAFETY_ANALYSIS escape outside wrapper internals: "
            "fix the lock discipline instead of suppressing the analysis")
    return out


def rule_e(rel, stripped, raw):
    out = []
    if rel.endswith(".hpp"):
        first = next((l.strip() for l in stripped.split("\n") if l.strip()),
                     "")
        if not re.match(r"#\s*pragma\s+once\b", first):
            out.append(("INV-E", rel, 1,
                        "header does not start with #pragma once"))
    out += findings_for_pattern(
        PARENT_INCLUDE_RE, stripped, rel, "INV-E",
        'parent-relative include: include project headers as "dir/file.hpp" '
        "rooted at src/")
    out += findings_for_pattern(
        BITS_INCLUDE_RE, stripped, rel, "INV-E",
        "libstdc++ internal <bits/...> include")
    return out


# --------------------------------------------------------------------- main


def run(root: Path):
    findings = []
    src = root / "src"
    files = sorted(src.rglob("*.hpp")) + sorted(src.rglob("*.cpp")) \
        if src.is_dir() else []
    for path in files:
        rel = path.relative_to(root).as_posix()
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_code(raw)
        findings += rule_a_sources(rel, stripped)
        findings += rule_b(rel, stripped)
        findings += rule_c(rel, stripped)
        findings += rule_d(rel, stripped)
        findings += rule_e(rel, stripped, raw)
    findings += rule_a_cmake(root)
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this file's repo)")
    args = parser.parse_args()
    findings = run(args.root.resolve())
    for rule, rel, line, message in findings:
        print(f"{rule} {rel}:{line} {message}")
    if findings:
        print(f"check_invariants: {len(findings)} violation(s)",
              file=sys.stderr)
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
