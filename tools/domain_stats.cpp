// Operator visibility into the domain lifecycle (DESIGN.md §13): dump the
// per-domain state the eviction policy scores — usage, age, merge count,
// last-used round — as a table.
//
//   --artifact=model.smore   inspect a saved Pipeline artifact (the lifecycle
//                            state serializes with the descriptor bank, so a
//                            snapshot taken mid-stream answers "which domains
//                            is this deployment actually using?");
//   --demo                   no artifact handy: train a small model, stream a
//                            few drifting adaptation rounds through the
//                            lifecycle engine, and dump the resulting bank —
//                            shows enroll, merge, decay, and evict columns
//                            moving.
//
//   ./build/tool_domain_stats --artifact=model.smore
//   ./build/tool_domain_stats --demo

#include <cstdio>
#include <string>
#include <vector>

#include "core/domain_lifecycle.hpp"
#include "core/pipeline.hpp"
#include "core/smore.hpp"
#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

void print_bank(const DomainDescriptorBank& bank) {
  std::printf("bank: %zu domain(s), lifecycle clock %llu, next id %d\n",
              bank.size(), static_cast<unsigned long long>(bank.clock()),
              bank.next_domain_id());
  std::printf("  %-4s %-6s %9s %10s %7s %10s %10s %6s\n", "pos", "id",
              "samples", "usage", "merges", "enrolled", "last_used", "age");
  for (std::size_t k = 0; k < bank.size(); ++k) {
    const DomainMeta& m = bank.meta(k);
    std::printf("  %-4zu %-6d %9zu %10.3f %7llu %10llu %10llu %6llu\n", k,
                bank.domain_id(k), bank.sample_count(k), m.usage,
                static_cast<unsigned long long>(m.merge_count),
                static_cast<unsigned long long>(m.enrolled_round),
                static_cast<unsigned long long>(m.last_used_round),
                static_cast<unsigned long long>(bank.clock() -
                                                m.enrolled_round));
  }
}

/// A miniature drifting stream against the lifecycle engine: three source
/// domains, then rounds of novel / recurring drift so every column of the
/// table is exercised (fresh enrollments, merges into a recurring domain,
/// decayed usage, and an eviction once the cap bites).
void run_demo() {
  const std::size_t dim = 512;
  const int classes = 4;
  Rng rng(7);
  std::vector<std::vector<float>> protos;
  for (int c = 0; c < classes; ++c) {
    std::vector<float> p(dim);
    for (auto& x : p) x = rng.bipolar();
    protos.push_back(std::move(p));
  }

  HvDataset train(dim);
  std::vector<float> row(dim);
  for (int d = 0; d < 3; ++d) {
    std::vector<float> skew(dim);
    for (auto& x : skew) x = rng.bipolar();
    for (int c = 0; c < classes; ++c) {
      for (int i = 0; i < 16; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
          row[j] = protos[static_cast<std::size_t>(c)][j] +
                   0.5f * skew[j] + static_cast<float>(rng.normal(0.0, 0.3));
        }
        train.add(row, c, d);
      }
    }
  }
  SmoreModel model(classes, dim);
  model.fit(train);

  LifecycleConfig cfg;
  cfg.max_domains = 6;
  cfg.protected_domains = model.num_domains();
  DomainLifecycle engine(cfg);

  const auto make_round = [&](const std::vector<float>& skew) {
    const std::size_t n = 48;
    HvMatrix m(n, dim);
    std::vector<int> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = static_cast<int>(rng() %
                                     static_cast<std::uint64_t>(classes));
      labels[i] = c;
      for (std::size_t j = 0; j < dim; ++j) {
        m.row(i)[j] = protos[static_cast<std::size_t>(c)][j] +
                      1.2f * skew[j] +
                      static_cast<float>(rng.normal(0.0, 0.3));
      }
    }
    return std::make_pair(std::move(m), std::move(labels));
  };

  std::vector<float> recurring(dim);
  for (auto& x : recurring) x = rng.bipolar();
  for (int r = 0; r < 6; ++r) {
    // Even rounds: a never-seen world (enroll). Odd rounds: the recurring
    // world returns (merge into its existing domain).
    std::vector<float> skew = recurring;
    if (r % 2 == 0) {
      for (auto& x : skew) x = rng.bipolar();
    }
    auto [m, labels] = make_round(skew);
    const LifecycleRoundStats stats = engine.run_round(model, m.view(),
                                                       labels);
    std::printf("round %d: clusters=%zu enrolled=%zu merged=%zu evicted=%zu "
                "K=%zu\n",
                r, stats.clusters, stats.enrolled_new, stats.merged,
                stats.evicted, model.num_domains());
  }
  std::printf("\n");
  print_bank(model.descriptors());
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Dump per-domain lifecycle state (usage, age, merge count) from a "
      ".smore artifact, or from a built-in drifting-stream demo.");
  cli.flag_string("artifact", "", "path to a .smore Pipeline artifact")
      .flag_bool("demo", false,
                 "train a small model and stream drifting lifecycle rounds");
  if (!cli.parse(argc, argv)) return 1;

  const std::string artifact = cli.get_string("artifact");
  if (artifact.empty() && !cli.get_bool("demo")) {
    std::fprintf(stderr, "need --artifact=<path.smore> or --demo\n");
    return 1;
  }

  if (!artifact.empty()) {
    try {
      const Pipeline pipeline = Pipeline::load(artifact);
      std::printf("artifact: %s (%d classes, dim %zu)\n", artifact.c_str(),
                  pipeline.num_classes(), pipeline.dim());
      print_bank(pipeline.model().descriptors());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cannot inspect %s: %s\n", artifact.c_str(),
                   e.what());
      return 1;
    }
    return 0;
  }

  run_demo();
  return 0;
}
