// Fixture: INV-C must fire — a serve-layer function fulfills a request
// promise without any accounting call in the same function.
#include <future>
#include <utility>

#include "serve/server.hpp"

namespace smore {

void fulfill_without_accounting(std::promise<ServeResult>& p) {
  ServeResult r;
  r.status = ServeStatus::kOk;
  p.set_value(std::move(r));
}

}  // namespace smore
