// Fixture: INV-B must fire — EventLog emission from a non-decision layer.
#include "obs/telemetry.hpp"

namespace smore {

void leak_event(obs::TelemetryHub& hub) {
  hub.emit(obs::EventType::kShed, "kernel", "per-row-event", 1);
}

}  // namespace smore
