// Fixture: INV-E must fire — header without #pragma once, with a
// parent-relative include and a libstdc++ internal include.
#include "../hdc/ops.hpp"
#include <bits/stdc++.h>

namespace smore {
inline int answer() { return 42; }
}  // namespace smore
