#pragma once
// Fixture: INV-D must fire — a bare std::mutex outside util/mutex.hpp, so
// clang's thread-safety analysis could never see this lock.
#include <map>
#include <mutex>
#include <string>

namespace smore {

class SideCache {
 public:
  void put(const std::string& k, int v) {
    const std::scoped_lock lock(m_);
    map_[k] = v;
  }

 private:
  std::mutex m_;
  std::map<std::string, int> map_;
};

}  // namespace smore
