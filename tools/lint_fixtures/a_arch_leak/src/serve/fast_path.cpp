// Fixture: INV-A must fire — SIMD intrinsics outside src/hdc/kernels/.
#include <immintrin.h>

namespace smore {

float bad_sum8(const float* p) {
  __m256 v = _mm256_loadu_ps(p);
#if defined(__AVX512F__)
  (void)v;
#endif
  float out[8];
  _mm256_storeu_ps(out, v);
  return out[0];
}

}  // namespace smore
