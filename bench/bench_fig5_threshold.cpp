// Figure 5 — "Impact of δ* on Model Performance": SMORE's LODO accuracy on
// USC-HAD as the OOD threshold δ* sweeps across its range. The paper reports
// an interior optimum (≈0.65 on their similarity scale): too-small δ*
// under-detects nothing and lets dissimilar domains pollute in-distribution
// ensembles; too-large δ* treats everything as in-distribution-with-gating
// and over-restricts the ensemble. The bench reports the measured optimum
// and the accuracy drop at both extremes. Results: results/fig5_threshold.csv.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/smore.hpp"
#include "data/dataset.hpp"
#include "eval/reporting.hpp"

namespace {
using namespace smore;
using namespace smore::bench;
}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Figure 5 reproduction: SMORE LODO accuracy on USC-HAD vs the OOD "
      "threshold delta*.");
  cli.flag_double("scale", 0.05, "fraction of USC-HAD sample counts")
      .flag_bool("full", false, "paper scale")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("hd_epochs", 15, "OnlineHD refinement epochs")
      .flag_string("sweep",
                   "0.40,0.50,0.60,0.65,0.70,0.75,0.80,0.85,0.90,0.95",
                   "comma-separated delta* values (paper sweeps 0.4-0.9)")
      .flag_int("seed", 1, "seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bool full = cli.get_bool("full");
  const bool smoke = cli.get_bool("smoke");
  const double scale = smoke ? 0.03 : full ? 1.0 : cli.get_double("scale");
  const std::size_t dim =
      smoke ? 512 : full ? 8192 : static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::vector<double> sweep;
  {
    const std::string list =
        smoke ? "0.50,0.65,0.80" : cli.get_string("sweep");
    std::size_t pos = 0;
    while (pos < list.size()) {
      sweep.push_back(std::stod(list.substr(pos)));
      const std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  const EncodedBundle bundle = prepare(spec_by_name("USC-HAD", scale, seed), dim);
  const int classes = bundle.raw.num_classes();
  const int domains = bundle.raw.num_domains();

  OnlineHDConfig hd;
  hd.epochs = smoke ? 2 : static_cast<int>(cli.get_int("hd_epochs"));
  hd.seed = seed;

  // Train one SMORE per fold (training is δ*-independent), then sweep δ* on
  // the trained models — exactly how the paper tunes the hyperparameter.
  print_banner("Figure 5: SMORE accuracy vs delta* (USC-HAD)");
  CsvWriter csv(results_path("fig5_threshold"),
                {"delta_star", "accuracy", "ood_rate"});
  std::vector<std::unique_ptr<SmoreModel>> models;
  std::vector<HvDataset> tests;
  for (int d = 0; d < domains; ++d) {
    const Split fold = lodo_split(bundle.raw, d);
    HvDataset train = bundle.encoded.select(fold.train);
    HvDataset test = bundle.encoded.select(fold.test);
    SmoreConfig sc;
    sc.domain_model = hd;
    auto model = std::make_unique<SmoreModel>(classes, dim, sc);
    model->fit(train);
    models.push_back(std::move(model));
    tests.push_back(std::move(test));
  }

  TablePrinter table({"delta*", "LODO acc (%)", "OOD rate (%)"});
  double best_acc = -1.0;
  double best_delta = 0.0;
  for (const double delta : sweep) {
    double acc = 0.0;
    double ood = 0.0;
    for (int d = 0; d < domains; ++d) {
      models[static_cast<std::size_t>(d)]->set_delta_star(delta);
      acc += models[static_cast<std::size_t>(d)]->accuracy(
          tests[static_cast<std::size_t>(d)]);
      ood += models[static_cast<std::size_t>(d)]->ood_rate(
          tests[static_cast<std::size_t>(d)]);
    }
    acc /= domains;
    ood /= domains;
    table.row({fmt(delta), fmt(100 * acc), fmt(100 * ood)});
    csv.row_values(delta, acc, ood);
    if (acc > best_acc) {
      best_acc = acc;
      best_delta = delta;
    }
  }
  table.print();
  std::printf(
      "\nBest delta* = %.2f (accuracy %.2f%%). Paper: interior optimum at "
      "delta* ~ 0.65; the similarity scale depends on the encoder's common "
      "component, so the optimum's location can shift while the shape — "
      "plateau/peak then decay at large delta* — should match. (csv: %s)\n",
      best_delta, 100 * best_acc, results_path("fig5_threshold").c_str());
  return 0;
}
