// Packed-binary vs scalar vs float inference throughput: the headline
// numbers of the packed binary backend (DESIGN.md §8). Times the same
// [queries × classes] Hamming-argmin problem end to end — float query
// hypervectors in, labels out — four ways:
//   scalar        — the per-query loop the repo shipped before the backend:
//                   quantize one BinaryVector per query (bit-by-bit
//                   conditional OR), then one BinaryVector::hamming call per
//                   class. This is the seed's BinaryModel::predict path.
//   packed 1T     — ops::sign_pack_matrix (batch mask-compare quantization)
//                   + ops::hamming_matrix (blocked XOR+popcount) + argmin,
//                   parallelism disabled;
//   packed MT     — the same over the global ThreadPool;
//   float 1T      — ops::similarity_matrix argmax on the unquantized floats
//                   (what the float backend costs on the same problem).
// Also isolates the kernel-only ratio (pre-packed queries, Hamming only) and
// reports the float-vs-packed bytes footprint of the model and the query
// block. Emits BENCH_binary_inference.json for CI tracking. Defaults match
// the backend's acceptance scenario: 10k queries × 4096 dims.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "eval/timer.hpp"
#include "hdc/binary.hpp"
#include "hdc/bit_matrix.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/ops.hpp"
#include "hdc/ops_binary.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

/// Best-of-repeats wall-clock seconds for `body`.
template <typename F>
double best_seconds(int repeats, F&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    body();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Scalar vs packed-binary vs float inference throughput (queries/sec) "
      "and float-vs-packed bytes footprint; emits "
      "BENCH_binary_inference.json.");
  cli.flag_int("queries", 10000, "number of query hypervectors")
      .flag_int("classes", 16, "number of class hypervectors")
      .flag_int("dim", 4096, "hyperdimension")
      .flag_int("repeats", 3, "timing repeats (best taken)")
      .flag_string("out", "BENCH_binary_inference.json", "JSON output path")
      .flag_int("seed", 42, "data seed");
  bench::add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  auto nq = static_cast<std::size_t>(cli.get_int("queries"));
  auto nc = static_cast<std::size_t>(cli.get_int("classes"));
  auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  int repeats = static_cast<int>(cli.get_int("repeats"));
  if (cli.get_bool("smoke")) {
    nq = 2000;
    nc = 8;
    dim = 512;
    repeats = 1;
  }
  const std::string out_path = cli.get_string("out");

  // A trained-shaped model: random bipolar class vectors (the kernels only
  // see signs, so this is representative of any trained classifier).
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  OnlineHDClassifier model(static_cast<int>(nc), dim);
  for (std::size_t c = 0; c < nc; ++c) {
    model.set_class_vector(static_cast<int>(c),
                           Hypervector::random_bipolar(dim, rng));
  }
  const BinaryModel binary(model);
  HvMatrix queries(nq, dim);
  for (std::size_t i = 0; i < nq * dim; ++i) {
    queries.data()[i] = static_cast<float>(rng.normal());
  }

  std::printf("[bench] %zu queries x %zu classes x d=%zu (%d repeats)\n", nq,
              nc, dim, repeats);

  // --- scalar: the seed's per-query path (quantize + per-class hamming) ---
  std::vector<BinaryVector> class_bits;
  class_bits.reserve(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    class_bits.emplace_back(model.class_vector(static_cast<int>(c)).span());
  }
  std::vector<int> scalar_labels(nq);
  const double scalar_s = best_seconds(repeats, [&] {
    for (std::size_t q = 0; q < nq; ++q) {
      const BinaryVector query(queries.row(q));  // bit-by-bit quantization
      int best = 0;
      std::size_t best_distance = dim + 1;
      for (std::size_t c = 0; c < nc; ++c) {
        const std::size_t d = class_bits[c].hamming(query);
        if (d < best_distance) {
          best_distance = d;
          best = static_cast<int>(c);
        }
      }
      scalar_labels[q] = best;
    }
  });

  // --- kernel-only scalar baseline: pre-packed queries, hamming only ------
  std::vector<BinaryVector> query_bits;
  query_bits.reserve(nq);
  for (std::size_t q = 0; q < nq; ++q) query_bits.emplace_back(queries.row(q));
  std::vector<std::size_t> scalar_dist(nq * nc);
  const double scalar_ham_s = best_seconds(repeats, [&] {
    for (std::size_t q = 0; q < nq; ++q) {
      for (std::size_t c = 0; c < nc; ++c) {
        scalar_dist[q * nc + c] = query_bits[q].hamming(class_bits[c]);
      }
    }
  });

  // --- packed: batch quantization + blocked Hamming matrix + argmin -------
  const auto packed_pipeline = [&](bool parallel) {
    BitMatrix qbits(nq, dim);
    ops::sign_pack_matrix(queries.data(), nq, dim, qbits.data(),
                          qbits.words_per_row(), parallel);
    std::vector<std::size_t> dist(nq * nc);
    ops::hamming_matrix(qbits.data(), nq, binary.class_bits().data(), nc,
                        qbits.words_per_row(), dist.data(), parallel);
    std::vector<int> labels(nq);
    for (std::size_t q = 0; q < nq; ++q) {
      const std::size_t* row = dist.data() + q * nc;
      int best = 0;
      std::size_t best_distance = dim + 1;
      for (std::size_t c = 0; c < nc; ++c) {
        if (row[c] < best_distance) {
          best_distance = row[c];
          best = static_cast<int>(c);
        }
      }
      labels[q] = best;
    }
    return labels;
  };
  std::vector<int> packed_labels;
  const double packed_1t_s =
      best_seconds(repeats, [&] { packed_labels = packed_pipeline(false); });
  const double packed_mt_s =
      best_seconds(repeats, [&] { packed_labels = packed_pipeline(true); });

  // Kernel-only packed timing (pre-packed queries, Hamming matrix only).
  const BitMatrix qbits = ops::sign_pack_matrix(queries.view());
  std::vector<std::size_t> kernel_dist(nq * nc);
  const double packed_ham_s = best_seconds(repeats, [&] {
    ops::hamming_matrix(qbits.view(), binary.class_bits().view(),
                        kernel_dist.data(), /*parallel=*/false);
  });

  // --- float backend on the same problem ----------------------------------
  HvMatrix float_classes(nc, dim);
  for (std::size_t c = 0; c < nc; ++c) {
    float_classes.set_row(c, model.class_vector(static_cast<int>(c)).span());
  }
  std::vector<double> float_sims(nq * nc);
  const double float_1t_s = best_seconds(repeats, [&] {
    ops::similarity_matrix(queries.data(), nq, float_classes.data(), nc, dim,
                           float_sims.data(), nullptr, /*parallel=*/false);
  });

  // --- correctness: kernels must be bit-identical to the scalar loop ------
  std::size_t dist_mismatches = 0;
  for (std::size_t i = 0; i < nq * nc; ++i) {
    dist_mismatches += kernel_dist[i] != scalar_dist[i] ? 1 : 0;
  }
  std::size_t label_mismatches = 0;
  const std::vector<int> model_labels = binary.predict_batch(queries.view());
  for (std::size_t q = 0; q < nq; ++q) {
    label_mismatches += packed_labels[q] != scalar_labels[q] ? 1 : 0;
    label_mismatches += model_labels[q] != scalar_labels[q] ? 1 : 0;
  }

  // --- footprints ----------------------------------------------------------
  const std::size_t model_float_bytes = nc * dim * sizeof(float);
  const std::size_t model_packed_bytes = binary.footprint_bytes();
  const std::size_t query_float_bytes = nq * dim * sizeof(float);
  const std::size_t query_packed_bytes = qbits.bytes();
  const double footprint_ratio = static_cast<double>(model_float_bytes) /
                                 static_cast<double>(model_packed_bytes);

  const double scalar_qps = static_cast<double>(nq) / scalar_s;
  const double scalar_ham_qps = static_cast<double>(nq) / scalar_ham_s;
  const double packed_1t_qps = static_cast<double>(nq) / packed_1t_s;
  const double packed_mt_qps = static_cast<double>(nq) / packed_mt_s;
  const double packed_ham_qps = static_cast<double>(nq) / packed_ham_s;
  const double float_1t_qps = static_cast<double>(nq) / float_1t_s;
  const unsigned threads = std::thread::hardware_concurrency();

  std::printf("  end-to-end (float hv in, label out):\n");
  std::printf("    scalar (seed path)  : %8.4f s  %12.0f queries/s\n",
              scalar_s, scalar_qps);
  std::printf("    packed (1T)         : %8.4f s  %12.0f queries/s  (%.2fx)\n",
              packed_1t_s, packed_1t_qps, scalar_s / packed_1t_s);
  std::printf("    packed (MT)         : %8.4f s  %12.0f queries/s  (%.2fx, "
              "%u hw threads)\n",
              packed_mt_s, packed_mt_qps, scalar_s / packed_mt_s, threads);
  std::printf("    float batch (1T)    : %8.4f s  %12.0f queries/s\n",
              float_1t_s, float_1t_qps);
  std::printf("  kernel only (pre-packed queries, Hamming):\n");
  std::printf("    scalar hamming loop : %8.4f s  %12.0f queries/s\n",
              scalar_ham_s, scalar_ham_qps);
  std::printf("    ops::hamming_matrix : %8.4f s  %12.0f queries/s  (%.2fx)\n",
              packed_ham_s, packed_ham_qps, scalar_ham_s / packed_ham_s);
  std::printf("  footprint: model %zu -> %zu bytes (%.1fx), query block "
              "%zu -> %zu bytes\n",
              model_float_bytes, model_packed_bytes, footprint_ratio,
              query_float_bytes, query_packed_bytes);
  std::printf("  distance mismatches vs scalar: %zu  label mismatches: %zu "
              "(both must be 0)\n",
              dist_mismatches, label_mismatches);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"queries\": %zu,\n"
      "  \"classes\": %zu,\n"
      "  \"dim\": %zu,\n"
      "  \"hardware_threads\": %u,\n"
      "  \"scalar_seconds\": %.6f,\n"
      "  \"packed_single_thread_seconds\": %.6f,\n"
      "  \"packed_multi_thread_seconds\": %.6f,\n"
      "  \"float_single_thread_seconds\": %.6f,\n"
      "  \"scalar_queries_per_second\": %.1f,\n"
      "  \"packed_single_thread_queries_per_second\": %.1f,\n"
      "  \"packed_multi_thread_queries_per_second\": %.1f,\n"
      "  \"float_single_thread_queries_per_second\": %.1f,\n"
      "  \"scalar_hamming_queries_per_second\": %.1f,\n"
      "  \"hamming_matrix_queries_per_second\": %.1f,\n"
      "  \"speedup_single_thread_vs_scalar\": %.3f,\n"
      "  \"speedup_multi_thread_vs_scalar\": %.3f,\n"
      "  \"speedup_packed_vs_float\": %.3f,\n"
      "  \"kernel_speedup_vs_scalar_hamming\": %.3f,\n"
      "  \"model_float_bytes\": %zu,\n"
      "  \"model_packed_bytes\": %zu,\n"
      "  \"query_float_bytes\": %zu,\n"
      "  \"query_packed_bytes\": %zu,\n"
      "  \"footprint_ratio\": %.2f,\n"
      "  \"distance_mismatches\": %zu,\n"
      "  \"label_mismatches\": %zu\n"
      "}\n",
      nq, nc, dim, threads, scalar_s, packed_1t_s, packed_mt_s, float_1t_s,
      scalar_qps, packed_1t_qps, packed_mt_qps, float_1t_qps, scalar_ham_qps,
      packed_ham_qps, scalar_s / packed_1t_s, scalar_s / packed_mt_s,
      float_1t_s / packed_1t_s, scalar_ham_s / packed_ham_s,
      model_float_bytes, model_packed_bytes, query_float_bytes,
      query_packed_bytes, footprint_ratio, dist_mismatches, label_mismatches);
  std::fclose(f);
  std::printf("(json: %s)\n", out_path.c_str());
  return dist_mismatches + label_mismatches == 0 ? 0 : 1;
}
