// Multi-tenant serving: fleet throughput, tenant fairness, and registry
// residency under memory pressure (DESIGN.md §12).
//
// Drives a MultiTenantServer over T tenants (each a full .smore artifact
// opened through the ModelRegistry) through five phases:
//
//   direct        — the no-server packed kernel ceiling (one thread, full
//                   batches);
//   single-tenant — ONE tenant at the same total load: what sharding/
//                   routing/registry overhead will be measured against;
//   cold vs warm  — per-tenant first-request latency (includes the lazy
//                   artifact load) against the warm path;
//   zipf fair/unfair — Zipf(s)-distributed open-loop traffic, with
//                   admission control + round-robin drain ON vs the
//                   throughput-greedy baseline (no quota, oldest-first).
//                   Reports aggregate q/s plus head-tenant vs tail-cohort
//                   (ranks T/2..T-1, histograms merged) p99;
//   churn         — uniform traffic against a registry budgeted to ~T/4
//                   resident models: sustained load/evict cycling. The
//                   budget must bound peak resident bytes.
//
// Acceptance (ISSUE 7, at >= 64 tenants, Zipf 1.0): aggregate packed
// throughput >= 0.8x the single-tenant ceiling at equal total load;
// tail-cohort p99 within 3x head p99 with fairness on; peak resident bytes
// <= the configured budget across the churn phase.
//
// Scale note (same caveat as bench_serving.cpp): this environment exposes
// ONE core, so shards/workers add scheduling, not parallel compute, and
// all fleet-vs-single ratios are shape claims. Rerun with real cores
// (--shards 4 --workers-per-shard 2) for deployment-scale figures.
// Emits BENCH_serving_multitenant.json for CI tracking.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "eval/timer.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hv_matrix.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

/// Linearly separable encoded dataset (no encoder in the serving loop: the
/// bench isolates routing + scheduling + inference, like bench_serving).
HvDataset make_train(int classes, int domains, std::size_t per_cell,
                     std::size_t dim, Rng& rng) {
  std::vector<std::vector<float>> prototypes;
  for (int c = 0; c < classes; ++c) {
    std::vector<float> p(dim);
    for (auto& x : p) x = rng.bipolar();
    prototypes.push_back(std::move(p));
  }
  HvDataset data(dim);
  std::vector<float> row(dim);
  for (int d = 0; d < domains; ++d) {
    for (int c = 0; c < classes; ++c) {
      for (std::size_t i = 0; i < per_cell; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
          row[j] = prototypes[static_cast<std::size_t>(c)][j] +
                   static_cast<float>(rng.normal(0.0, 0.5));
        }
        data.add(row, c, d);
      }
    }
  }
  return data;
}

/// Zipf(s) CDF over ranks 0..n-1 (rank 0 is the head tenant).
std::vector<double> zipf_cdf(std::size_t n, double s) {
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = sum;
  }
  for (double& c : cdf) c /= sum;
  return cdf;
}

std::size_t zipf_sample(const std::vector<double>& cdf, double u) {
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return std::min(static_cast<std::size_t>(it - cdf.begin()), cdf.size() - 1);
}

std::string tenant_name(std::size_t rank) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%03u", static_cast<unsigned>(rank));
  return buf;
}

struct ZipfResult {
  double seconds = 0.0;
  double qps = 0.0;
  double mean_batch_fill = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t sheds = 0;
  double head_p99_ms = 0.0;
  double tail_p99_ms = 0.0;
  double tail_head_ratio = 0.0;
  double head_shed_fraction = 0.0;
  double tail_shed_fraction = 0.0;
};

/// One Zipf traffic phase: `producers` open-loop threads, each keeping up
/// to `window` requests in flight, tenant sampled per request.
ZipfResult run_zipf(bool fair, std::size_t quota,
                    const ModelRegistry::ArtifactOpener& opener,
                    const MultiTenantConfig& base_cfg,
                    const std::vector<std::string>& tenants,
                    const std::vector<double>& cdf, const HvMatrix& queries,
                    std::size_t total, std::size_t producers,
                    std::size_t window, const Rng& rng) {
  MultiTenantConfig cfg = base_cfg;
  cfg.fair = fair;
  cfg.tenant_inflight_quota = quota;
  auto registry = std::make_shared<ModelRegistry>(opener);  // unbounded
  MultiTenantServer server(std::move(registry), cfg);

  // Pre-warm every tenant: the cold-start phase measures loads; this one
  // measures steady-state fleet scheduling.
  for (const std::string& t : tenants) {
    const auto row = queries.row(0);
    server.submit(t, {row.begin(), row.end()}).get();
  }

  std::atomic<std::uint64_t> sheds{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Rng prng = rng.fork(1000 + p);
      const std::size_t n = total / producers;
      std::deque<std::future<ServeResult>> inflight;
      std::uint64_t my_sheds = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t rank = zipf_sample(cdf, prng.uniform());
        const auto row = queries.row((p * n + i) % queries.rows());
        auto fut = server.try_submit(tenants[rank], {row.begin(), row.end()});
        if (fut.has_value()) {
          inflight.push_back(std::move(*fut));
          if (inflight.size() >= window) {
            inflight.front().get();
            inflight.pop_front();
          }
        } else {
          ++my_sheds;  // open-loop: shed requests are dropped, not retried
        }
      }
      while (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
      }
      sheds.fetch_add(my_sheds);
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.seconds();
  server.shutdown();

  const MultiTenantStats stats = server.stats();
  const auto per_tenant = server.tenant_stats();  // sorted by name = rank
  const std::size_t T = tenants.size();
  LatencyHistogram tail;
  std::uint64_t tail_attempted = 0, tail_shed = 0;
  for (std::size_t r = T / 2; r < T; ++r) {
    tail.merge(per_tenant[r].latency);
    tail_attempted += per_tenant[r].submitted + per_tenant[r].shed_queue_full +
                      per_tenant[r].shed_tenant_quota;
    tail_shed +=
        per_tenant[r].shed_queue_full + per_tenant[r].shed_tenant_quota;
  }
  const auto& head = per_tenant[0];
  const std::uint64_t head_shed =
      head.shed_queue_full + head.shed_tenant_quota;
  const std::uint64_t head_attempted = head.submitted + head_shed;

  ZipfResult r;
  r.seconds = seconds;
  r.completed = stats.completed;
  r.sheds = sheds.load();
  r.qps = static_cast<double>(stats.completed) / seconds;
  r.mean_batch_fill = stats.mean_batch_fill;
  r.head_p99_ms = 1e3 * head.latency.quantile(0.99);
  r.tail_p99_ms = 1e3 * tail.quantile(0.99);
  r.tail_head_ratio =
      r.head_p99_ms > 0.0 ? r.tail_p99_ms / r.head_p99_ms : 0.0;
  r.head_shed_fraction = head_attempted != 0
                             ? static_cast<double>(head_shed) /
                                   static_cast<double>(head_attempted)
                             : 0.0;
  r.tail_shed_fraction = tail_attempted != 0
                             ? static_cast<double>(tail_shed) /
                                   static_cast<double>(tail_attempted)
                             : 0.0;
  std::printf("  %-28s %7llu q in %7.3f s  %9.0f q/s  fill %5.1f  head p99 "
              "%7.3f ms  tail p99 %7.3f ms  ratio %5.2f  shed head %4.1f%% "
              "tail %4.1f%%\n",
              fair ? "zipf fair (quota+rr)" : "zipf unfair (baseline)",
              static_cast<unsigned long long>(r.completed), r.seconds, r.qps,
              r.mean_batch_fill, r.head_p99_ms, r.tail_p99_ms,
              r.tail_head_ratio, 1e2 * r.head_shed_fraction,
              1e2 * r.tail_shed_fraction);
  std::fflush(stdout);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Multi-tenant serving bench: fleet throughput vs the single-tenant "
      "ceiling, head-vs-tail tenant p99 under Zipf traffic with fairness "
      "on/off, cold-start latency, and registry eviction churn under a byte "
      "budget; emits BENCH_serving_multitenant.json.");
  cli.flag_int("tenants", 64, "number of tenants (>= 2)")
      .flag_int("queries", 40000, "total requests per traffic phase")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("classes", 6, "classes")
      .flag_int("domains", 4, "source domains")
      .flag_int("producers", 8, "producer threads")
      .flag_int("window", 64, "in-flight requests per producer")
      .flag_int("shards", 1, "router shards")
      .flag_int("workers-per-shard", 1, "batching workers per shard")
      .flag_int("max-batch", 64, "per-tenant micro-batch cap")
      .flag_int("delay-us", 200, "batch-formation wait (us)")
      .flag_int("quota", 64, "per-tenant in-flight quota (fair phase)")
      .flag_int("churn-queries", 6000, "requests in the eviction-churn phase")
      .flag_string("out", "BENCH_serving_multitenant.json", "JSON output path")
      .flag_bool("metrics-json", false,
                 "embed the telemetry metrics snapshot (cumulative over all "
                 "phases) in the output JSON")
      .flag_int("seed", 42, "data seed");
  bench::add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  auto tenants_n = static_cast<std::size_t>(cli.get_int("tenants"));
  auto total = static_cast<std::size_t>(cli.get_int("queries"));
  auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  auto producers = static_cast<std::size_t>(cli.get_int("producers"));
  auto window = static_cast<std::size_t>(cli.get_int("window"));
  auto churn_total = static_cast<std::size_t>(cli.get_int("churn-queries"));
  const int classes = static_cast<int>(cli.get_int("classes"));
  const int domains = static_cast<int>(cli.get_int("domains"));
  const auto quota = static_cast<std::size_t>(cli.get_int("quota"));
  if (cli.get_bool("smoke")) {
    tenants_n = 12;
    total = 4000;
    dim = 512;
    window = 16;
    churn_total = 1000;
  }
  tenants_n = std::max<std::size_t>(2, tenants_n);
  const std::string out_path = cli.get_string("out");

  MultiTenantConfig base_cfg;
  base_cfg.num_shards = static_cast<std::size_t>(cli.get_int("shards"));
  base_cfg.workers_per_shard =
      static_cast<std::size_t>(cli.get_int("workers-per-shard"));
  base_cfg.max_batch = static_cast<std::size_t>(cli.get_int("max-batch"));
  base_cfg.max_delay_us =
      static_cast<std::uint32_t>(cli.get_int("delay-us"));
  base_cfg.shard_queue_capacity =
      std::max<std::size_t>(1024, producers * window * 2);
  // One hub shared across every phase: the embedded snapshot shows
  // cumulative fleet counters, per-tenant series, the slow-span tail, and
  // shed/evict events for the whole sweep.
  const std::shared_ptr<obs::Telemetry> hub =
      cli.get_bool("metrics-json") ? obs::Telemetry::make() : nullptr;
  base_cfg.telemetry = hub;

  // ---- one trained artifact, shared by every tenant (tenant identity is a
  // routing/residency concern; weights don't change the scheduling cost)
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const HvDataset train = make_train(classes, domains, 20, dim, rng);
  EncoderConfig ec;
  ec.dim = dim;
  Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                    train.num_classes());
  pipeline.fit_encoded(train);
  pipeline.model().calibrate_delta_star(train, 0.05);
  pipeline.quantize();  // packed backend serves; δ* transfers pre-calibration
  std::string artifact;
  {
    std::ostringstream buffer(std::ios::binary);
    pipeline.save(buffer);
    artifact = buffer.str();
  }
  const ModelRegistry::ArtifactOpener opener =
      [artifact](const std::string&) {
        std::istringstream in(artifact, std::ios::binary);
        return ModelSnapshot::from_artifact(in, /*version=*/1);
      };
  std::size_t per_model_bytes;
  {
    std::istringstream in(artifact, std::ios::binary);
    per_model_bytes = snapshot_resident_bytes(*ModelSnapshot::from_artifact(in, 1));
  }

  std::vector<std::string> tenants;
  tenants.reserve(tenants_n);
  for (std::size_t t = 0; t < tenants_n; ++t) {
    tenants.push_back(tenant_name(t));
  }
  const std::vector<double> cdf = zipf_cdf(tenants_n, 1.0);

  // Query mix: mostly in-distribution rows, some noise.
  HvMatrix queries(1024, dim);
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    if (i % 8 == 7) {
      for (std::size_t j = 0; j < dim; ++j) {
        queries.row(i)[j] = static_cast<float>(rng.normal());
      }
    } else {
      queries.set_row(i, train.row(i % train.size()));
    }
  }

  std::printf("[bench] %zu tenants, %zu requests/phase, d=%zu, artifact "
              "%.0f KiB (%.0f KiB resident), %zu producers x window %zu, "
              "%zu shard(s) x %zu worker(s), zipf 1.0\n",
              tenants_n, total, dim,
              static_cast<double>(artifact.size()) / 1024.0,
              static_cast<double>(per_model_bytes) / 1024.0, producers,
              window, base_cfg.num_shards, base_cfg.workers_per_shard);

  // ---- phase: direct kernel ceiling (no server)
  double direct_qps;
  {
    std::istringstream in(artifact, std::ios::binary);
    const auto snap = ModelSnapshot::from_artifact(in, 1);
    WallTimer t;
    std::size_t done = 0;
    while (done < total) {
      const std::size_t n = std::min(queries.rows(), total - done);
      (void)snap->backend->predict_batch_full(queries.view().slice(0, n));
      done += n;
    }
    direct_qps = static_cast<double>(total) / t.seconds();
  }
  std::printf("  %-28s %35.0f q/s  (no scheduling: upper bound)\n",
              "direct packed predict", direct_qps);

  // ---- phase: single-tenant server ceiling at equal total load
  double single_qps;
  {
    auto registry = std::make_shared<ModelRegistry>(opener);
    MultiTenantServer server(std::move(registry), base_cfg);
    const auto row0 = queries.row(0);
    server.submit(tenants[0], {row0.begin(), row0.end()}).get();  // warm
    WallTimer t;
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        const std::size_t n = total / producers;
        std::deque<std::future<ServeResult>> inflight;
        for (std::size_t i = 0; i < n; ++i) {
          const auto row = queries.row((p * n + i) % queries.rows());
          inflight.push_back(
              server.submit(tenants[0], {row.begin(), row.end()}));
          if (inflight.size() >= window) {
            inflight.front().get();
            inflight.pop_front();
          }
        }
        while (!inflight.empty()) {
          inflight.front().get();
          inflight.pop_front();
        }
      });
    }
    for (auto& th : threads) th.join();
    const double seconds = t.seconds();
    server.shutdown();
    single_qps = static_cast<double>(server.stats().completed) / seconds;
    std::printf("  %-28s %7llu q in %7.3f s  %9.0f q/s  fill %5.1f\n",
                "single-tenant ceiling",
                static_cast<unsigned long long>(server.stats().completed),
                seconds, single_qps, server.stats().mean_batch_fill);
  }

  // ---- phase: cold-start vs warm (per-tenant first touch)
  double cold_p50_ms, cold_p95_ms, warm_p50_ms;
  {
    auto registry = std::make_shared<ModelRegistry>(opener);
    MultiTenantServer server(std::move(registry), base_cfg);
    std::vector<double> cold_ms, warm_ms;
    const auto row0 = queries.row(0);
    const std::vector<float> q{row0.begin(), row0.end()};
    for (const std::string& t : tenants) {
      WallTimer timer;
      server.submit(t, q).get();
      cold_ms.push_back(1e3 * timer.seconds());
    }
    for (const std::string& t : tenants) {
      WallTimer timer;
      server.submit(t, q).get();
      warm_ms.push_back(1e3 * timer.seconds());
    }
    std::sort(cold_ms.begin(), cold_ms.end());
    std::sort(warm_ms.begin(), warm_ms.end());
    cold_p50_ms = cold_ms[cold_ms.size() / 2];
    cold_p95_ms = cold_ms[cold_ms.size() * 95 / 100];
    warm_p50_ms = warm_ms[warm_ms.size() / 2];
    std::printf("  %-28s cold p50 %7.3f ms  p95 %7.3f ms   warm p50 %7.3f "
                "ms  (%llu loads)\n",
                "cold-start vs warm", cold_p50_ms, cold_p95_ms, warm_p50_ms,
                static_cast<unsigned long long>(
                    server.stats().registry.loads));
  }

  // ---- phases: Zipf traffic, fairness on vs off
  const ZipfResult fair = run_zipf(true, quota, opener, base_cfg, tenants,
                                   cdf, queries, total, producers, window,
                                   rng);
  const ZipfResult unfair = run_zipf(false, 0, opener, base_cfg, tenants,
                                     cdf, queries, total, producers, window,
                                     rng);

  // ---- phase: eviction churn under a ~T/4-model byte budget
  std::size_t churn_budget, churn_peak;
  std::uint64_t churn_loads, churn_evictions;
  double churn_qps;
  bool churn_bounded;
  // Outlives the phase: ~ModelRegistry unregisters its callback metrics, so
  // the registry must still be alive when the shared hub is exported below.
  std::shared_ptr<ModelRegistry> churn_registry;
  {
    RegistryConfig rc;
    rc.byte_budget = per_model_bytes * std::max<std::size_t>(1, tenants_n / 4);
    rc.telemetry = hub;  // churn loads/evictions land in the shared snapshot
    auto registry = churn_registry =
        std::make_shared<ModelRegistry>(opener, rc);
    MultiTenantServer server(std::move(registry), base_cfg);
    WallTimer t;
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        Rng prng = rng.fork(5000 + p);
        const std::size_t n = churn_total / producers;
        std::deque<std::future<ServeResult>> inflight;
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t rank = prng.index(tenants_n);  // uniform: churns
          const auto row = queries.row((p * n + i) % queries.rows());
          inflight.push_back(
              server.submit(tenants[rank], {row.begin(), row.end()}));
          if (inflight.size() >= window) {
            inflight.front().get();
            inflight.pop_front();
          }
        }
        while (!inflight.empty()) {
          inflight.front().get();
          inflight.pop_front();
        }
      });
    }
    for (auto& th : threads) th.join();
    const double seconds = t.seconds();
    server.shutdown();
    const RegistryStats rs = server.stats().registry;
    churn_budget = rc.byte_budget;
    churn_peak = rs.peak_resident_bytes;
    churn_loads = rs.loads;
    churn_evictions = rs.evictions;
    churn_qps = static_cast<double>(server.stats().completed) / seconds;
    churn_bounded = churn_peak <= churn_budget;
    std::printf("  %-28s %7llu q in %7.3f s  %9.0f q/s  %llu loads  %llu "
                "evictions  peak %.0f / budget %.0f KiB  %s\n",
                "eviction churn (budget T/4)",
                static_cast<unsigned long long>(server.stats().completed),
                seconds, churn_qps,
                static_cast<unsigned long long>(churn_loads),
                static_cast<unsigned long long>(churn_evictions),
                static_cast<double>(churn_peak) / 1024.0,
                static_cast<double>(churn_budget) / 1024.0,
                churn_bounded ? "BOUNDED" : "OVER BUDGET");
  }

  const double throughput_ratio =
      single_qps > 0.0 ? fair.qps / single_qps : 0.0;
  std::printf("  fleet vs single-tenant throughput: %.2fx (acceptance >= "
              "0.8x)   tail/head p99: fair %.2fx (acceptance <= 3x), unfair "
              "%.2fx   churn residency: %s\n",
              throughput_ratio, fair.tail_head_ratio,
              unfair.tail_head_ratio, churn_bounded ? "bounded" : "VIOLATED");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"tenants\": %zu,\n"
      "  \"queries_per_phase\": %zu,\n"
      "  \"dim\": %zu,\n"
      "  \"classes\": %d,\n"
      "  \"domains\": %d,\n"
      "  \"producers\": %zu,\n"
      "  \"window\": %zu,\n"
      "  \"shards\": %zu,\n"
      "  \"workers_per_shard\": %zu,\n"
      "  \"max_batch\": %zu,\n"
      "  \"tenant_inflight_quota\": %zu,\n"
      "  \"zipf_s\": 1.0,\n"
      "  \"hardware_threads\": %u,\n"
      "  \"artifact_bytes\": %zu,\n"
      "  \"resident_bytes_per_model\": %zu,\n"
      "  \"direct_packed_queries_per_second\": %.1f,\n"
      "  \"single_tenant_queries_per_second\": %.1f,\n"
      "  \"cold_start_p50_ms\": %.4f,\n"
      "  \"cold_start_p95_ms\": %.4f,\n"
      "  \"warm_p50_ms\": %.4f,\n"
      "  \"zipf_fair\": {\"queries_per_second\": %.1f, \"completed\": %llu, "
      "\"sheds\": %llu, \"mean_batch_fill\": %.2f, \"head_p99_ms\": %.4f, "
      "\"tail_p99_ms\": %.4f, \"tail_head_p99_ratio\": %.3f, "
      "\"head_shed_fraction\": %.4f, \"tail_shed_fraction\": %.4f},\n"
      "  \"zipf_unfair\": {\"queries_per_second\": %.1f, \"completed\": "
      "%llu, \"sheds\": %llu, \"mean_batch_fill\": %.2f, \"head_p99_ms\": "
      "%.4f, \"tail_p99_ms\": %.4f, \"tail_head_p99_ratio\": %.3f, "
      "\"head_shed_fraction\": %.4f, \"tail_shed_fraction\": %.4f},\n"
      "  \"churn\": {\"byte_budget\": %zu, \"peak_resident_bytes\": %zu, "
      "\"bounded_by_budget\": %s, \"loads\": %llu, \"evictions\": %llu, "
      "\"queries_per_second\": %.1f},\n"
      "  \"acceptance\": {\"throughput_ratio_vs_single_tenant\": %.3f, "
      "\"throughput_ratio_min\": 0.8, \"tail_head_p99_ratio_fair\": %.3f, "
      "\"tail_head_p99_ratio_max\": 3.0, \"churn_resident_bounded\": %s}",
      tenants_n, total, dim, classes, domains, producers, window,
      base_cfg.num_shards, base_cfg.workers_per_shard, base_cfg.max_batch,
      quota, std::thread::hardware_concurrency(), artifact.size(),
      per_model_bytes, direct_qps, single_qps, cold_p50_ms, cold_p95_ms,
      warm_p50_ms, fair.qps,
      static_cast<unsigned long long>(fair.completed),
      static_cast<unsigned long long>(fair.sheds), fair.mean_batch_fill,
      fair.head_p99_ms, fair.tail_p99_ms, fair.tail_head_ratio,
      fair.head_shed_fraction, fair.tail_shed_fraction, unfair.qps,
      static_cast<unsigned long long>(unfair.completed),
      static_cast<unsigned long long>(unfair.sheds),
      unfair.mean_batch_fill, unfair.head_p99_ms, unfair.tail_p99_ms,
      unfair.tail_head_ratio, unfair.head_shed_fraction,
      unfair.tail_shed_fraction, churn_budget, churn_peak,
      churn_bounded ? "true" : "false",
      static_cast<unsigned long long>(churn_loads),
      static_cast<unsigned long long>(churn_evictions), churn_qps,
      throughput_ratio, fair.tail_head_ratio,
      churn_bounded ? "true" : "false");
  if (hub != nullptr) {
    // The snapshot is already JSON: splice it in as a raw value.
    std::fprintf(f, ",\n  \"telemetry\": %s",
                 obs::snapshot_json(*hub).dump(2).c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("(json: %s)\n", out_path.c_str());
  return 0;
}
