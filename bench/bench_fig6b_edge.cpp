// Figure 6(b) — "Efficiency of SMORE and CNN-based Algorithms on Edge
// Platforms": inference latency and energy on a Raspberry Pi 3B+ and a
// Jetson Nano, for PAMAP2. The paper reports SMORE 14.82x / 19.29x faster
// than TENT / MDANs on the Pi and 13.22x / 17.59x on the Jetson, with
// correspondingly lower energy.
//
// SUBSTITUTION (DESIGN.md §3): neither device exists in this environment.
// Inference latency is *measured* on this host per algorithm and projected
// through a documented device model (spec-ratio slowdown factors per
// workload class, energy = projected latency x platform power). All numbers
// below are labeled simulated. Results: results/fig6b_edge.csv.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "eval/edge_model.hpp"
#include "eval/experiment.hpp"
#include "eval/reporting.hpp"

namespace {
using namespace smore;
using namespace smore::bench;

// Fig. 6b compares the inference-relevant algorithms (DOMINO is absent from
// the paper's edge figure).
constexpr std::array<Algo, 4> kEdgeAlgos{Algo::kTent, Algo::kMdans,
                                         Algo::kBaselineHd, Algo::kSmore};
}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Figure 6(b) reproduction (simulated edge devices): inference latency "
      "and energy of TENT, MDANs, BaselineHD, SMORE on PAMAP2, projected "
      "onto Raspberry Pi 3B+ and Jetson Nano device models.");
  cli.flag_double("scale", 0.10, "fraction of PAMAP2 sample counts")
      .flag_bool("full", false, "paper scale")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("hd_epochs", 10, "OnlineHD refinement epochs")
      .flag_int("cnn_epochs", 2, "CNN training epochs (training not reported)")
      .flag_int("seed", 1, "seed");
  if (!cli.parse(argc, argv)) return 1;
  const bool full = cli.get_bool("full");
  const double scale = full ? 1.0 : cli.get_double("scale");
  const std::size_t dim =
      full ? 8192 : static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  SuiteConfig cfg;
  cfg.dim = dim;
  cfg.hd_epochs = static_cast<int>(cli.get_int("hd_epochs"));
  cfg.cnn_epochs = static_cast<int>(cli.get_int("cnn_epochs"));
  cfg.seed = seed;

  const EncodedBundle bundle = prepare(spec_by_name("PAMAP2", scale, seed), dim);
  cfg.encode_seconds_per_sample = bundle.encode_seconds_per_sample;
  const int domains = bundle.raw.num_domains();

  // Measure average inference latency per algorithm over LODO folds.
  std::map<Algo, double> infer_seconds;
  for (const Algo algo : kEdgeAlgos) {
    double infer = 0.0;
    for (int d = 0; d < domains; ++d) {
      const Split fold = lodo_split(bundle.raw, d);
      infer += run_algorithm(algo, bundle.raw, bundle.encoded, fold, cfg)
                   .infer_seconds;
    }
    infer_seconds[algo] = infer / domains;
    std::printf("  measured %s server inference: %.3fs\n", algo_name(algo),
                infer_seconds[algo]);
    std::fflush(stdout);
  }

  CsvWriter csv(results_path("fig6b_edge"),
                {"platform", "algorithm", "latency_seconds", "energy_joules",
                 "simulated"});
  for (const EdgePlatform& platform : paper_edge_platforms()) {
    print_banner("Figure 6(b): " + platform.name +
                 " (SIMULATED device model, PAMAP2)");
    TablePrinter table(
        {"algorithm", "latency (s)", "energy (J)", "vs SMORE latency"});
    const double smore_latency = platform.project_latency(
        infer_seconds[Algo::kSmore], algo_workload(Algo::kSmore));
    for (const Algo algo : kEdgeAlgos) {
      const WorkloadKind kind = algo_workload(algo);
      const double latency =
          platform.project_latency(infer_seconds[algo], kind);
      const double energy = platform.project_energy(infer_seconds[algo], kind);
      table.row({algo_name(algo), fmt(latency, 2), fmt(energy, 1),
                 fmt_speedup(latency / smore_latency)});
      csv.row_values(platform.name, algo_name(algo), latency, energy, "yes");
    }
    table.print();
  }

  const EdgePlatform rpi = raspberry_pi3();
  const EdgePlatform nano = jetson_nano();
  auto speedup = [&](const EdgePlatform& p, Algo a) {
    return p.project_latency(infer_seconds[a], algo_workload(a)) /
           p.project_latency(infer_seconds[Algo::kSmore],
                             algo_workload(Algo::kSmore));
  };
  print_banner("Sec 4.3.2 headline speedups (simulated)");
  TablePrinter head({"ratio", "paper", "measured", "shape holds?"});
  const struct {
    const char* label;
    const char* paper;
    double measured;
  } rows[] = {
      {"RPi: TENT / SMORE", "14.82x", speedup(rpi, Algo::kTent)},
      {"RPi: MDANs / SMORE", "19.29x", speedup(rpi, Algo::kMdans)},
      {"Nano: TENT / SMORE", "13.22x", speedup(nano, Algo::kTent)},
      {"Nano: MDANs / SMORE", "17.59x", speedup(nano, Algo::kMdans)},
  };
  for (const auto& r : rows) {
    head.row({r.label, r.paper, fmt_speedup(r.measured),
              r.measured > 1.0 ? "yes" : "NO"});
  }
  head.print();
  std::printf("\nAll edge numbers are projections of measured server latency "
              "through the documented device model (DESIGN.md §3). (csv: %s)\n",
              results_path("fig6b_edge").c_str());
  return 0;
}
