// Figure 6(b) — "Efficiency of SMORE and CNN-based Algorithms on Edge
// Platforms": inference latency and energy on a Raspberry Pi 3B+ and a
// Jetson Nano, for PAMAP2. The paper reports SMORE 14.82x / 19.29x faster
// than TENT / MDANs on the Pi and 13.22x / 17.59x on the Jetson, with
// correspondingly lower energy.
//
// SUBSTITUTION (DESIGN.md §3): neither device exists in this environment.
// Inference latency is *measured* on this host per algorithm and projected
// through a documented device model (spec-ratio slowdown factors per
// workload class, energy = projected latency x platform power). All numbers
// below are labeled simulated. Results: results/fig6b_edge.csv.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/binary_smore.hpp"
#include "core/smore.hpp"
#include "data/dataset.hpp"
#include "eval/edge_model.hpp"
#include "eval/experiment.hpp"
#include "eval/reporting.hpp"
#include "eval/timer.hpp"
#include "hdc/ops_binary.hpp"

namespace {
using namespace smore;
using namespace smore::bench;

// Fig. 6b compares the inference-relevant algorithms (DOMINO is absent from
// the paper's edge figure).
constexpr std::array<Algo, 4> kEdgeAlgos{Algo::kTent, Algo::kMdans,
                                         Algo::kBaselineHd, Algo::kSmore};
}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Figure 6(b) reproduction (simulated edge devices): inference latency "
      "and energy of TENT, MDANs, BaselineHD, SMORE on PAMAP2, projected "
      "onto Raspberry Pi 3B+ and Jetson Nano device models.");
  cli.flag_double("scale", 0.10, "fraction of PAMAP2 sample counts")
      .flag_bool("full", false, "paper scale")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("hd_epochs", 10, "OnlineHD refinement epochs")
      .flag_int("cnn_epochs", 2, "CNN training epochs (training not reported)")
      .flag_int("seed", 1, "seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bool full = cli.get_bool("full");
  const bool smoke = cli.get_bool("smoke");
  const double scale = smoke ? 0.05 : full ? 1.0 : cli.get_double("scale");
  const std::size_t dim =
      smoke ? 512 : full ? 8192 : static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  SuiteConfig cfg;
  cfg.dim = dim;
  cfg.hd_epochs = smoke ? 2 : static_cast<int>(cli.get_int("hd_epochs"));
  cfg.cnn_epochs = smoke ? 1 : static_cast<int>(cli.get_int("cnn_epochs"));
  cfg.seed = seed;

  const EncodedBundle bundle = prepare(spec_by_name("PAMAP2", scale, seed), dim);
  cfg.encode_seconds_per_sample = bundle.encode_seconds_per_sample;
  const int domains = bundle.raw.num_domains();

  // Measure average inference latency per algorithm over LODO folds. SMORE
  // is handled separately below so one trained model per fold serves both
  // the float and the packed-backend measurement.
  std::map<Algo, double> infer_seconds;
  for (const Algo algo : kEdgeAlgos) {
    if (algo == Algo::kSmore) continue;
    double infer = 0.0;
    for (int d = 0; d < domains; ++d) {
      const Split fold = lodo_split(bundle.raw, d);
      infer += run_algorithm(algo, bundle.raw, bundle.encoded, fold, cfg)
                   .infer_seconds;
    }
    infer_seconds[algo] = infer / domains;
    std::printf("  measured %s server inference: %.3fs\n", algo_name(algo),
                infer_seconds[algo]);
    std::fflush(stdout);
  }

  // SMORE float + packed backend (the packed rows go beyond the paper's
  // figure): per fold, train once, then time float evaluate() and packed
  // BinarySmoreModel inference (batch sign quantization of the queries
  // included) on the held-out block. Both timings add the fold's amortized
  // encode share, exactly like run_algorithm's HDC inference accounting.
  double infer_float = 0.0;
  double infer_packed = 0.0;
  std::size_t packed_bytes = 0;
  std::size_t float_bytes = 0;
  for (int d = 0; d < domains; ++d) {
    const Split fold = lodo_split(bundle.raw, d);
    const double test_encode =
        cfg.encode_seconds_per_sample * static_cast<double>(fold.test.size());
    SmoreConfig scfg;
    scfg.delta_star = cfg.delta_star;
    scfg.domain_model.epochs = cfg.hd_epochs;
    scfg.domain_model.learning_rate = cfg.hd_learning_rate;
    scfg.domain_model.seed = cfg.seed;
    SmoreModel smore(bundle.raw.num_classes(), dim, scfg);
    smore.fit(bundle.encoded.select(fold.train));
    const HvDataset test = bundle.encoded.select(fold.test);
    {
      WallTimer t;
      (void)smore.evaluate(test);
      infer_float += t.seconds() + test_encode;
    }
    const BinarySmoreModel packed(smore);
    {
      WallTimer t;
      (void)packed.predict_batch(test.view());
      infer_packed += t.seconds() + test_encode;
    }
    packed_bytes = packed.footprint_bytes();
    float_bytes = smore.footprint_bytes();
  }
  infer_seconds[Algo::kSmore] = infer_float / domains;
  infer_packed /= domains;
  std::printf("  measured %s server inference: %.3fs\n",
              algo_name(Algo::kSmore), infer_seconds[Algo::kSmore]);
  constexpr const char* kPackedName = "SMORE (packed)";
  std::printf("  measured %s server inference: %.3fs (model %.1f KiB vs "
              "%.1f KiB float, %.0fx)\n",
              kPackedName, infer_packed,
              static_cast<double>(packed_bytes) / 1024.0,
              static_cast<double>(float_bytes) / 1024.0,
              static_cast<double>(float_bytes) /
                  static_cast<double>(packed_bytes));
  std::fflush(stdout);

  CsvWriter csv(results_path("fig6b_edge"),
                {"platform", "algorithm", "latency_seconds", "energy_joules",
                 "simulated"});
  for (const EdgePlatform& platform : paper_edge_platforms()) {
    print_banner("Figure 6(b): " + platform.name +
                 " (SIMULATED device model, PAMAP2)");
    TablePrinter table(
        {"algorithm", "latency (s)", "energy (J)", "vs SMORE latency"});
    const double smore_latency = platform.project_latency(
        infer_seconds[Algo::kSmore], algo_workload(Algo::kSmore));
    for (const Algo algo : kEdgeAlgos) {
      const WorkloadKind kind = algo_workload(algo);
      const double latency =
          platform.project_latency(infer_seconds[algo], kind);
      const double energy = platform.project_energy(infer_seconds[algo], kind);
      table.row({algo_name(algo), fmt(latency, 2), fmt(energy, 1),
                 fmt_speedup(latency / smore_latency)});
      csv.row_values(platform.name, algo_name(algo), latency, energy, "yes");
    }
    // The packed backend rides the same HDC workload-class projection.
    {
      const double latency = platform.project_latency(
          infer_packed, WorkloadKind::kHdcInference);
      const double energy = platform.project_energy(
          infer_packed, WorkloadKind::kHdcInference);
      // Packed inference is often sub-centisecond: print at full precision
      // so small-scale runs don't display as 0.00.
      table.row({kPackedName, fmt(latency, 4), fmt(energy, 4),
                 fmt_speedup(latency / smore_latency)});
      csv.row_values(platform.name, kPackedName, latency, energy, "yes");
    }
    table.print();
  }

  const EdgePlatform rpi = raspberry_pi3();
  const EdgePlatform nano = jetson_nano();
  auto speedup = [&](const EdgePlatform& p, Algo a) {
    return p.project_latency(infer_seconds[a], algo_workload(a)) /
           p.project_latency(infer_seconds[Algo::kSmore],
                             algo_workload(Algo::kSmore));
  };
  print_banner("Sec 4.3.2 headline speedups (simulated)");
  TablePrinter head({"ratio", "paper", "measured", "shape holds?"});
  const struct {
    const char* label;
    const char* paper;
    double measured;
  } rows[] = {
      {"RPi: TENT / SMORE", "14.82x", speedup(rpi, Algo::kTent)},
      {"RPi: MDANs / SMORE", "19.29x", speedup(rpi, Algo::kMdans)},
      {"Nano: TENT / SMORE", "13.22x", speedup(nano, Algo::kTent)},
      {"Nano: MDANs / SMORE", "17.59x", speedup(nano, Algo::kMdans)},
  };
  for (const auto& r : rows) {
    head.row({r.label, r.paper, fmt_speedup(r.measured),
              r.measured > 1.0 ? "yes" : "NO"});
  }
  head.print();
  std::printf("\nAll edge numbers are projections of measured server latency "
              "through the documented device model (DESIGN.md §3). (csv: %s)\n",
              results_path("fig6b_edge").c_str());
  return 0;
}
