// Telemetry overhead: what full observability costs on the serving hot path
// (DESIGN.md §14).
//
// Drives the SAME multi-tenant open-loop traffic twice per repeat,
// interleaved A/B so thermal and cache drift hits both arms equally:
//
//   counters-only — telemetry compiled in but detail switched off
//                   (TelemetryConfig{histograms,traces,events = false}).
//                   Counters stay on: they back ServerStats and cannot be
//                   disabled, so this arm is the shipping baseline;
//   full          — histograms + trace spans (default sampling, always-on
//                   slow tail) + the event log, i.e. everything fleet_top
//                   renders.
//
// Reports median served q/s per arm across `--repeats` interleaved pairs
// and the overhead fraction 1 - full/counters_only. Acceptance (ISSUE 9):
// full telemetry costs <= 2% served throughput. Per-request telemetry work
// in the full arm is three histogram records, a sampled span, and no events
// on the happy path — all O(1) against a d-dimensional predict.
//
// Scale note (same caveat as bench_common.hpp): one core here, so this
// measures the compute-side overhead; on a multicore server the striped
// histograms keep the cost flat as workers scale. Emits BENCH_telemetry.json.

#include <algorithm>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/pipeline.hpp"
#include "eval/timer.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hv_matrix.hpp"
#include "obs/telemetry.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

/// Linearly separable encoded dataset (no encoder in the serving loop: the
/// bench isolates scheduling + inference + telemetry, like bench_serving).
HvDataset make_train(int classes, int domains, std::size_t per_cell,
                     std::size_t dim, Rng& rng) {
  std::vector<std::vector<float>> prototypes;
  for (int c = 0; c < classes; ++c) {
    std::vector<float> p(dim);
    for (auto& x : p) x = rng.bipolar();
    prototypes.push_back(std::move(p));
  }
  HvDataset data(dim);
  std::vector<float> row(dim);
  for (int d = 0; d < domains; ++d) {
    for (int c = 0; c < classes; ++c) {
      for (std::size_t i = 0; i < per_cell; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
          row[j] = prototypes[static_cast<std::size_t>(c)][j] +
                   static_cast<float>(rng.normal(0.0, 0.5));
        }
        data.add(row, c, d);
      }
    }
  }
  return data;
}

struct ArmResult {
  double seconds = 0.0;
  double qps = 0.0;
  std::uint64_t completed = 0;
};

/// One timed pass: `producers` open-loop threads, uniform tenant mix.
ArmResult run_arm(const obs::TelemetryConfig& tc,
                  const ModelRegistry::ArtifactOpener& opener,
                  const MultiTenantConfig& base_cfg,
                  const std::vector<std::string>& tenants,
                  const HvMatrix& queries, std::size_t total,
                  std::size_t producers, std::size_t window) {
  MultiTenantConfig cfg = base_cfg;
  cfg.telemetry = obs::Telemetry::make(tc);
  auto registry = std::make_shared<ModelRegistry>(opener);
  MultiTenantServer server(std::move(registry), cfg);

  // Warm every tenant so neither arm pays artifact loads inside the timer.
  for (const std::string& t : tenants) {
    const auto row = queries.row(0);
    server.submit(t, {row.begin(), row.end()}).get();
  }

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::size_t n = total / producers;
      std::deque<std::future<ServeResult>> inflight;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx = p * n + i;
        const auto row = queries.row(idx % queries.rows());
        inflight.push_back(
            server.submit(tenants[idx % tenants.size()],
                          {row.begin(), row.end()}));
        if (inflight.size() >= window) {
          inflight.front().get();
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.seconds();
  server.shutdown();

  ArmResult r;
  r.seconds = seconds;
  r.completed = server.stats().completed;
  r.qps = static_cast<double>(r.completed) / seconds;
  return r;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Telemetry overhead bench: served q/s with full observability "
      "(histograms + trace spans + events) vs counters-only, interleaved "
      "A/B repeats on a multi-tenant server; emits BENCH_telemetry.json.");
  cli.flag_int("tenants", 8, "number of tenants")
      .flag_int("queries", 24000, "requests per timed arm")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("classes", 6, "classes")
      .flag_int("domains", 4, "source domains")
      .flag_int("producers", 4, "producer threads")
      .flag_int("window", 64, "in-flight requests per producer")
      .flag_int("max-batch", 64, "per-tenant micro-batch cap")
      .flag_int("delay-us", 200, "batch-formation wait (us)")
      .flag_int("repeats", 5, "interleaved A/B repeats")
      .flag_string("out", "BENCH_telemetry.json", "JSON output path")
      .flag_int("seed", 42, "data seed");
  bench::add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  auto tenants_n = static_cast<std::size_t>(cli.get_int("tenants"));
  auto total = static_cast<std::size_t>(cli.get_int("queries"));
  auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  auto producers = static_cast<std::size_t>(cli.get_int("producers"));
  auto window = static_cast<std::size_t>(cli.get_int("window"));
  auto repeats = static_cast<std::size_t>(cli.get_int("repeats"));
  const int classes = static_cast<int>(cli.get_int("classes"));
  const int domains = static_cast<int>(cli.get_int("domains"));
  if (cli.get_bool("smoke")) {
    tenants_n = 4;
    total = 3000;
    dim = 512;
    window = 16;
    repeats = 2;
  }
  repeats = std::max<std::size_t>(1, repeats);
  const std::string out_path = cli.get_string("out");

  MultiTenantConfig base_cfg;
  base_cfg.max_batch = static_cast<std::size_t>(cli.get_int("max-batch"));
  base_cfg.max_delay_us = static_cast<std::uint32_t>(cli.get_int("delay-us"));
  base_cfg.shard_queue_capacity =
      std::max<std::size_t>(1024, producers * window * 2);

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const HvDataset train = make_train(classes, domains, 20, dim, rng);
  EncoderConfig ec;
  ec.dim = dim;
  Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                    train.num_classes());
  pipeline.fit_encoded(train);
  pipeline.model().calibrate_delta_star(train, 0.05);
  pipeline.quantize();
  std::string artifact;
  {
    std::ostringstream buffer(std::ios::binary);
    pipeline.save(buffer);
    artifact = buffer.str();
  }
  const ModelRegistry::ArtifactOpener opener =
      [artifact](const std::string&) {
        std::istringstream in(artifact, std::ios::binary);
        return ModelSnapshot::from_artifact(in, /*version=*/1);
      };

  std::vector<std::string> tenants;
  for (std::size_t t = 0; t < tenants_n; ++t) {
    tenants.push_back("t" + std::to_string(t));
  }

  HvMatrix queries(1024, dim);
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    if (i % 8 == 7) {
      for (std::size_t j = 0; j < dim; ++j) {
        queries.row(i)[j] = static_cast<float>(rng.normal());
      }
    } else {
      queries.set_row(i, train.row(i % train.size()));
    }
  }

  obs::TelemetryConfig counters_only;
  counters_only.histograms = false;
  counters_only.traces = false;
  counters_only.events = false;
  const obs::TelemetryConfig full;  // defaults: everything on

  std::printf("[bench] %zu tenants, %zu requests/arm, d=%zu, %zu producers x "
              "window %zu, %zu interleaved repeats\n",
              tenants_n, total, dim, producers, window, repeats);

  std::vector<double> baseline_qps, full_qps;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    const ArmResult a = run_arm(counters_only, opener, base_cfg, tenants,
                                queries, total, producers, window);
    const ArmResult b = run_arm(full, opener, base_cfg, tenants, queries,
                                total, producers, window);
    baseline_qps.push_back(a.qps);
    full_qps.push_back(b.qps);
    std::printf("  repeat %zu: counters-only %9.0f q/s   full %9.0f q/s   "
                "ratio %.4f\n",
                rep, a.qps, b.qps, a.qps > 0.0 ? b.qps / a.qps : 0.0);
    std::fflush(stdout);
  }

  const double base_med = median(baseline_qps);
  const double full_med = median(full_qps);
  const double overhead =
      base_med > 0.0 ? 1.0 - full_med / base_med : 0.0;
  const bool pass = overhead <= 0.02;
  std::printf("  median counters-only %9.0f q/s   median full %9.0f q/s   "
              "overhead %+.2f%%  (acceptance <= 2%%: %s)\n",
              base_med, full_med, 1e2 * overhead, pass ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"tenants\": %zu,\n"
               "  \"queries_per_arm\": %zu,\n"
               "  \"dim\": %zu,\n"
               "  \"producers\": %zu,\n"
               "  \"window\": %zu,\n"
               "  \"repeats\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"counters_only_qps\": [",
               tenants_n, total, dim, producers, window, repeats,
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < baseline_qps.size(); ++i) {
    std::fprintf(f, "%s%.1f", i ? ", " : "", baseline_qps[i]);
  }
  std::fprintf(f, "],\n  \"full_telemetry_qps\": [");
  for (std::size_t i = 0; i < full_qps.size(); ++i) {
    std::fprintf(f, "%s%.1f", i ? ", " : "", full_qps[i]);
  }
  std::fprintf(f,
               "],\n"
               "  \"median_counters_only_qps\": %.1f,\n"
               "  \"median_full_telemetry_qps\": %.1f,\n"
               "  \"overhead_fraction\": %.5f,\n"
               "  \"acceptance\": {\"overhead_fraction_max\": 0.02, "
               "\"pass\": %s}\n"
               "}\n",
               base_med, full_med, overhead, pass ? "true" : "false");
  std::fclose(f);
  std::printf("(json: %s)\n", out_path.c_str());
  return 0;
}
