// Figure 7 — "Comparing Scalability Using Different Size of Data": training
// time and inference time of TENT, MDANs and SMORE on PAMAP2 as the
// training / inference data fraction sweeps {0.1 ... 0.9}. The paper's
// points: SMORE grows sub-linearly and stays orders of magnitude below the
// CNNs; CNN time grows considerably faster. Results:
// results/fig7_scalability.csv.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "eval/experiment.hpp"
#include "eval/reporting.hpp"

namespace {
using namespace smore;
using namespace smore::bench;

constexpr std::array<Algo, 3> kAlgos{Algo::kTent, Algo::kMdans, Algo::kSmore};
}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Figure 7 reproduction: train/inference time vs data fraction on "
      "PAMAP2 for TENT, MDANs, SMORE.");
  cli.flag_double("scale", 0.10, "base fraction of PAMAP2 sample counts")
      .flag_bool("full", false, "paper scale")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("hd_epochs", 15, "OnlineHD refinement epochs")
      .flag_int("cnn_epochs", 5, "CNN training epochs")
      .flag_string("fractions", "0.1,0.3,0.5,0.7,0.9", "data fractions")
      .flag_int("held_out", 0, "LODO held-out domain for the sweep")
      .flag_int("seed", 1, "seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bool full = cli.get_bool("full");
  const bool smoke = cli.get_bool("smoke");
  const double scale = smoke ? 0.05 : full ? 1.0 : cli.get_double("scale");
  const std::size_t dim =
      smoke ? 512 : full ? 8192 : static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const int held = static_cast<int>(cli.get_int("held_out"));

  std::vector<double> fractions;
  {
    const std::string list = smoke ? "0.3,0.9" : cli.get_string("fractions");
    std::size_t pos = 0;
    while (pos < list.size()) {
      fractions.push_back(std::stod(list.substr(pos)));
      const std::size_t comma = list.find(',', pos);
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }

  SuiteConfig cfg;
  cfg.dim = dim;
  cfg.hd_epochs = smoke ? 2 : static_cast<int>(cli.get_int("hd_epochs"));
  cfg.cnn_epochs = smoke ? 1 : static_cast<int>(cli.get_int("cnn_epochs"));
  cfg.seed = seed;

  const EncodedBundle bundle = prepare(spec_by_name("PAMAP2", scale, seed), dim);
  cfg.encode_seconds_per_sample = bundle.encode_seconds_per_sample;
  const Split base_fold = lodo_split(bundle.raw, held);

  CsvWriter csv(results_path("fig7_scalability"),
                {"fraction", "algorithm", "train_seconds", "infer_seconds",
                 "queries_per_second"});
  print_banner("Figure 7: time vs data fraction (PAMAP2, domain " +
               std::to_string(held + 1) + " held out)");
  TablePrinter table({"fraction", "algorithm", "train (s)", "inference (s)",
                      "queries/s"});

  // Per-algorithm series for the growth-rate summary.
  std::map<Algo, std::pair<double, double>> first_last_train;

  for (const double frac : fractions) {
    // Deterministic prefix subsets of the fold at this fraction.
    Split fold;
    Rng rng(seed ^ 0xf7ac);
    std::vector<std::size_t> train_pool = base_fold.train;
    std::vector<std::size_t> test_pool = base_fold.test;
    rng.shuffle(train_pool);
    rng.shuffle(test_pool);
    const auto n_train = static_cast<std::size_t>(
        frac * static_cast<double>(train_pool.size()));
    const auto n_test = static_cast<std::size_t>(
        frac * static_cast<double>(test_pool.size()));
    fold.train.assign(train_pool.begin(),
                      train_pool.begin() + static_cast<std::ptrdiff_t>(
                                               std::max<std::size_t>(1, n_train)));
    fold.test.assign(test_pool.begin(),
                     test_pool.begin() + static_cast<std::ptrdiff_t>(
                                             std::max<std::size_t>(1, n_test)));
    std::sort(fold.train.begin(), fold.train.end());
    std::sort(fold.test.begin(), fold.test.end());

    for (const Algo algo : kAlgos) {
      const AlgoRunResult r =
          run_algorithm(algo, bundle.raw, bundle.encoded, fold, cfg);
      const double qps =
          r.infer_seconds > 0.0
              ? static_cast<double>(fold.test.size()) / r.infer_seconds
              : 0.0;
      table.row({fmt(frac, 1), algo_name(algo), fmt(r.train_seconds, 3),
                 fmt(r.infer_seconds, 3), fmt(qps, 0)});
      csv.row_values(frac, algo_name(algo), r.train_seconds, r.infer_seconds,
                     qps);
      auto& fl = first_last_train[algo];
      if (frac == fractions.front()) fl.first = r.train_seconds;
      fl.second = r.train_seconds;
    }
    std::printf("  fraction %.1f done\n", frac);
    std::fflush(stdout);
  }
  table.print();

  print_banner("Growth from smallest to largest fraction (training time)");
  TablePrinter growth({"algorithm", "growth factor", "note"});
  for (const Algo algo : kAlgos) {
    const auto& fl = first_last_train[algo];
    growth.row({algo_name(algo), fmt_speedup(fl.second / std::max(fl.first, 1e-9)),
                algo == Algo::kSmore ? "paper: sub-linear, smallest slope"
                                     : "paper: grows considerably faster"});
  }
  growth.print();
  std::printf("\n(csv: %s)\n", results_path("fig7_scalability").c_str());
  return 0;
}
