// Domain-lifecycle bench: bounded continual adaptation keeps memory AND tail
// latency flat on a long drifting stream (DESIGN.md §13).
//
// The stream is `--cycles` repetitions of a three-phase drift schedule:
//
//   abrupt     a NEVER-seen world appears at full strength (fresh skew
//              vector each cycle — the stream never runs out of novelty);
//   gradual    the skew interpolates from that world toward world A over
//              the phase's windows (slow drift, the clustering stress case);
//   recurring  world A itself returns — the drift every deployment sees
//              again and again (night shift, weekend load, winter).
//
// Every phase preserves class structure (class prototypes + world skew +
// noise), so pseudo-labeled adaptation genuinely helps and accuracy against
// the true labels is measurable per phase.
//
// Two identical streaming runs over that schedule:
//
//   bounded    ServerConfig::lifecycle on — cluster / merge / decay / evict
//              against lifecycle_config.max_domains;
//   unbounded  the pre-lifecycle policy (one new domain per round, no cap):
//              K grows with stream length, and with it the O(K) per-query
//              ensemble cost and the model footprint.
//
// Per measurement window the bench records client-observed p50/p99 (from
// LatencyHistogram::snapshot_and_reset), process RSS, live K, and the
// adaptation counters (including side-buffer overflow sheds). Acceptance,
// recorded as booleans in BENCH_adaptation_lifecycle.json:
//
//   * bounded bank never exceeds max_domains;
//   * bounded late-window RSS <= 1.1x its early window, p99 <= 1.2x;
//   * unbounded shows growth in both (the baseline the lifecycle removes);
//   * bounded recurring-drift accuracy within 0.03 of unbounded.
//
// Scale note (DESIGN.md §7): single-core CI runs cannot hold microsecond
// tails steady, but the claim here is a SHAPE claim — flat-vs-growing across
// a 10x-longer stream — and the growing side is driven by K reaching the
// hundreds, which dwarfs scheduler noise. Run bounded first: RSS never
// shrinks, so ordering gives the flat run the colder allocator.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "bench_common.hpp"
#include "core/smore.hpp"
#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "util/cli.hpp"
#include "util/latency.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

/// Resident set size in bytes (Linux); 0 where /proc is unavailable.
std::size_t rss_bytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long total = 0;
  unsigned long resident = 0;
  const int got = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

/// The drifting query generator: fixed class prototypes, per-world skew.
struct DriftWorlds {
  std::size_t dim = 0;
  int classes = 0;
  std::vector<std::vector<float>> class_protos;
  std::vector<float> skew_a;  // the recurring world
  double skew_scale = 1.2;
  double noise = 0.4;

  DriftWorlds(std::size_t d, int c, Rng& rng) : dim(d), classes(c) {
    for (int k = 0; k < c; ++k) {
      std::vector<float> p(d);
      for (auto& x : p) x = rng.bipolar();
      class_protos.push_back(std::move(p));
    }
    skew_a = fresh_skew(rng);
  }

  [[nodiscard]] std::vector<float> fresh_skew(Rng& rng) const {
    std::vector<float> s(dim);
    for (auto& x : s) x = rng.bipolar();
    return s;
  }

  /// One query of class `label` under skew s = (1-t)·from + t·to.
  void make_row(std::span<float> out, int label,
                const std::vector<float>& from, const std::vector<float>& to,
                double t, Rng& rng) const {
    const auto& p = class_protos[static_cast<std::size_t>(label)];
    for (std::size_t j = 0; j < dim; ++j) {
      const double s = (1.0 - t) * from[j] + t * to[j];
      out[j] = p[j] + static_cast<float>(skew_scale * s +
                                         rng.normal(0.0, noise));
    }
  }
};

/// In-distribution training set: same class prototypes, small per-domain
/// skew (the source domains), so the drift worlds above are genuinely OOD.
HvDataset make_train(const DriftWorlds& worlds, int domains,
                     std::size_t per_cell, Rng& rng) {
  HvDataset data(worlds.dim);
  std::vector<float> row(worlds.dim);
  for (int d = 0; d < domains; ++d) {
    std::vector<float> skew(worlds.dim);
    for (auto& x : skew) x = rng.bipolar();
    for (int c = 0; c < worlds.classes; ++c) {
      for (std::size_t i = 0; i < per_cell; ++i) {
        const auto& p = worlds.class_protos[static_cast<std::size_t>(c)];
        for (std::size_t j = 0; j < worlds.dim; ++j) {
          row[j] = p[j] + static_cast<float>(0.5 * skew[j] +
                                             rng.normal(0.0, worlds.noise));
        }
        data.add(row, c, d);
      }
    }
  }
  return data;
}

struct WindowRecord {
  std::string phase;
  LatencySummary latency;
  std::size_t rss = 0;
  std::size_t live_domains = 0;
  double accuracy = 0.0;
};

struct RunOutcome {
  std::vector<WindowRecord> windows;
  double recurring_accuracy = 0.0;  ///< mean over all recurring windows
  std::size_t max_domains_seen = 0;
  ServerStats final_stats;
};

struct StreamParams {
  std::size_t cycles = 24;
  std::size_t windows_per_phase = 2;
  std::size_t window_queries = 300;
  std::size_t inflight = 16;
};

/// One full streaming run against a fresh server built from `model`.
RunOutcome run_stream(const SmoreModel& model, const DriftWorlds& worlds,
                      const StreamParams& p, bool lifecycle,
                      std::size_t max_domains, std::size_t adapt_min_batch,
                      std::uint64_t seed) {
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.num_workers = 1;
  cfg.adaptation = true;
  cfg.adapt_min_batch = adapt_min_batch;
  cfg.adapt_buffer_capacity = 4 * adapt_min_batch;
  cfg.adapt_poll_ms = 1;
  if (lifecycle) {
    cfg.lifecycle = true;
    cfg.lifecycle_config.max_domains = max_domains;
    // Below the calibrated δ*: OOD-gated candidates always have best
    // similarity < δ*, so a threshold above it would disable merging.
    cfg.lifecycle_config.merge_threshold = 0.50;
    cfg.lifecycle_config.usage_decay = 0.95;
    cfg.lifecycle_config.protected_domains = model.num_domains();
    cfg.lifecycle_config.cluster.max_clusters = 4;
  } else {
    cfg.adapt_max_domains = 1'000'000;  // the unbounded baseline
  }
  InferenceServer server(ModelSnapshot::make(model.clone(), false, 1),
                         nullptr, cfg);

  Rng rng(seed);
  RunOutcome out;
  LatencyHistogram hist;
  std::vector<float> skew_fresh;  // this cycle's abrupt world
  double recurring_acc_sum = 0.0;
  std::size_t recurring_windows = 0;

  auto run_window = [&](const char* phase, const std::vector<float>& from,
                        const std::vector<float>& to, double t0, double t1) {
    std::deque<std::pair<int, std::future<ServeResult>>> inflight;
    std::size_t correct = 0;
    std::size_t answered = 0;
    auto settle = [&](std::size_t keep) {
      while (inflight.size() > keep) {
        const ServeResult r = inflight.front().second.get();
        hist.record(r.latency_seconds);
        correct += r.label == inflight.front().first ? 1 : 0;
        ++answered;
        inflight.pop_front();
      }
    };
    std::vector<float> row(worlds.dim);
    for (std::size_t q = 0; q < p.window_queries; ++q) {
      const int label = static_cast<int>(
          rng() % static_cast<std::uint64_t>(worlds.classes));
      const double t =
          t0 + (t1 - t0) * (static_cast<double>(q) /
                            static_cast<double>(p.window_queries));
      worlds.make_row(row, label, from, to, t, rng);
      inflight.emplace_back(label, server.submit(std::vector<float>(row)));
      settle(p.inflight);
    }
    settle(0);

    WindowRecord w;
    w.phase = phase;
    w.latency = LatencySummary::from(hist.snapshot_and_reset());
    w.rss = rss_bytes();
    const ServerStats stats = server.stats();
    w.live_domains = stats.live_domains;
    w.accuracy = answered != 0
                     ? static_cast<double>(correct) /
                           static_cast<double>(answered)
                     : 0.0;
    out.max_domains_seen = std::max(out.max_domains_seen, w.live_domains);
    if (w.phase == "recurring") {
      recurring_acc_sum += w.accuracy;
      ++recurring_windows;
    }
    out.windows.push_back(std::move(w));
  };

  for (std::size_t cycle = 0; cycle < p.cycles; ++cycle) {
    skew_fresh = worlds.fresh_skew(rng);
    for (std::size_t w = 0; w < p.windows_per_phase; ++w) {
      run_window("abrupt", skew_fresh, skew_fresh, 0.0, 0.0);
    }
    for (std::size_t w = 0; w < p.windows_per_phase; ++w) {
      const double span = 1.0 / static_cast<double>(p.windows_per_phase);
      run_window("gradual", skew_fresh, worlds.skew_a,
                 static_cast<double>(w) * span,
                 static_cast<double>(w + 1) * span);
    }
    for (std::size_t w = 0; w < p.windows_per_phase; ++w) {
      run_window("recurring", worlds.skew_a, worlds.skew_a, 0.0, 0.0);
    }
  }

  server.shutdown();
  out.final_stats = server.stats();
  out.recurring_accuracy =
      recurring_windows != 0
          ? recurring_acc_sum / static_cast<double>(recurring_windows)
          : 0.0;
  return out;
}

/// Merging windows [begin, begin+n) of per-window summaries is impossible —
/// summaries aren't mergeable — so a cohort's p99 is the MEDIAN of its
/// windows' p99s (a single-core CI box throws multi-ms scheduler spikes into
/// individual windows; the median keeps the shape claim about the POLICY,
/// not the noise) and its RSS the cohort mean.
struct Cohort {
  double p99 = 0.0;
  double rss = 0.0;
};

Cohort cohort(const std::vector<WindowRecord>& windows, std::size_t begin,
              std::size_t n) {
  Cohort c;
  std::vector<double> p99s;
  double rss_sum = 0.0;
  for (std::size_t i = begin; i < begin + n && i < windows.size(); ++i) {
    p99s.push_back(windows[i].latency.p99_seconds);
    rss_sum += static_cast<double>(windows[i].rss);
  }
  if (p99s.empty()) return c;
  std::sort(p99s.begin(), p99s.end());
  c.p99 = p99s[p99s.size() / 2];
  c.rss = rss_sum / static_cast<double>(p99s.size());
  return c;
}

void print_run(const char* name, const RunOutcome& run) {
  std::printf("--- %s ---\n", name);
  std::printf("  %-4s %-10s %9s %9s %6s %8s %6s\n", "win", "phase",
              "p50(ms)", "p99(ms)", "K", "rss(MB)", "acc");
  for (std::size_t i = 0; i < run.windows.size(); ++i) {
    const WindowRecord& w = run.windows[i];
    std::printf("  %-4zu %-10s %9.3f %9.3f %6zu %8.1f %6.3f\n", i,
                w.phase.c_str(), 1e3 * w.latency.p50_seconds,
                1e3 * w.latency.p99_seconds, w.live_domains,
                static_cast<double>(w.rss) / (1024.0 * 1024.0), w.accuracy);
  }
  const ServerStats& s = run.final_stats;
  std::printf("  rounds=%llu absorbed=%llu merged=%llu evicted=%llu "
              "dropped=%llu (overflow=%llu) ood=%llu\n",
              static_cast<unsigned long long>(s.adaptation_rounds),
              static_cast<unsigned long long>(s.adaptation_absorbed),
              static_cast<unsigned long long>(s.adaptation_merged),
              static_cast<unsigned long long>(s.adaptation_evicted),
              static_cast<unsigned long long>(s.adaptation_dropped),
              static_cast<unsigned long long>(s.adaptation_overflow),
              static_cast<unsigned long long>(s.ood_flagged));
  std::fflush(stdout);
}

void emit_windows(std::FILE* f, const RunOutcome& run) {
  for (std::size_t i = 0; i < run.windows.size(); ++i) {
    const WindowRecord& w = run.windows[i];
    std::fprintf(f,
                 "      {\"window\": %zu, \"phase\": \"%s\", "
                 "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"live_domains\": %zu, "
                 "\"rss_bytes\": %zu, \"accuracy\": %.4f}%s\n",
                 i, w.phase.c_str(), 1e3 * w.latency.p50_seconds,
                 1e3 * w.latency.p99_seconds, w.live_domains, w.rss,
                 w.accuracy, i + 1 < run.windows.size() ? "," : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Domain-lifecycle bench: bounded vs unbounded continual adaptation on "
      "a long abrupt/gradual/recurring drift stream — flat memory and flat "
      "p99 vs monotone growth; emits BENCH_adaptation_lifecycle.json.");
  cli.flag_int("cycles", 24,
               "drift cycles (each: abrupt, gradual, recurring)")
      .flag_int("windows-per-phase", 2, "measurement windows per phase")
      .flag_int("window-queries", 300, "queries per measurement window")
      .flag_int("dim", 1024, "hyperdimension")
      .flag_int("classes", 4, "classes")
      .flag_int("domains", 3, "source domains")
      .flag_int("max-domains", 8, "lifecycle cap (bounded run)")
      .flag_int("adapt-min-batch", 64, "OOD windows per adaptation round")
      .flag_string("out", "BENCH_adaptation_lifecycle.json",
                   "JSON output path")
      .flag_int("seed", 42, "data seed");
  bench::add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  StreamParams p;
  p.cycles = static_cast<std::size_t>(cli.get_int("cycles"));
  p.windows_per_phase =
      static_cast<std::size_t>(cli.get_int("windows-per-phase"));
  p.window_queries = static_cast<std::size_t>(cli.get_int("window-queries"));
  std::size_t dim = static_cast<std::size_t>(cli.get_int("dim"));
  const int classes = static_cast<int>(cli.get_int("classes"));
  const int domains = static_cast<int>(cli.get_int("domains"));
  std::size_t max_domains =
      static_cast<std::size_t>(cli.get_int("max-domains"));
  std::size_t adapt_min_batch =
      static_cast<std::size_t>(cli.get_int("adapt-min-batch"));
  if (cli.get_bool("smoke")) {
    p.cycles = 2;
    p.window_queries = 60;
    dim = 256;
    adapt_min_batch = 16;
  }
  const std::string out_path = cli.get_string("out");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  Rng rng(seed);
  const DriftWorlds worlds(dim, classes, rng);
  const HvDataset train = make_train(worlds, domains, 20, rng);
  SmoreModel model(classes, dim);
  model.fit(train);
  model.calibrate_delta_star(train, 0.05);

  const std::size_t total_windows = p.cycles * 3 * p.windows_per_phase;
  std::printf("[bench] %zu cycles x 3 phases x %zu windows x %zu queries "
              "(d=%zu, K0=%d, cap=%zu) per mode\n",
              p.cycles, p.windows_per_phase, p.window_queries, dim, domains,
              max_domains);

  // Bounded FIRST (see the scale note in the header).
  const RunOutcome bounded = run_stream(model, worlds, p, /*lifecycle=*/true,
                                        max_domains, adapt_min_batch, seed);
  print_run("bounded (lifecycle)", bounded);
  const RunOutcome unbounded =
      run_stream(model, worlds, p, /*lifecycle=*/false, max_domains,
                 adapt_min_batch, seed);
  print_run("unbounded (no lifecycle)", unbounded);

  // Cohorts are whole cycles: early = cycle 2 (cycle 1 pays allocator and
  // snapshot warmup — RSS climbs regardless of policy while the heap grows
  // to steady state), late = the last cycle. Tiny runs (--smoke) fall back
  // to comparing the only cycle against itself.
  const std::size_t wpc = 3 * p.windows_per_phase;  // windows per cycle
  const std::size_t early_begin = total_windows > 2 * wpc ? wpc : 0;
  const Cohort b_early = cohort(bounded.windows, early_begin, wpc);
  const Cohort b_late =
      cohort(bounded.windows, bounded.windows.size() - wpc, wpc);
  const Cohort u_early = cohort(unbounded.windows, early_begin, wpc);
  const Cohort u_late =
      cohort(unbounded.windows, unbounded.windows.size() - wpc, wpc);

  const bool rss_supported = rss_bytes() != 0;
  const double b_p99_ratio = b_early.p99 > 0.0 ? b_late.p99 / b_early.p99 : 0.0;
  const double u_p99_ratio = u_early.p99 > 0.0 ? u_late.p99 / u_early.p99 : 0.0;
  const double b_rss_ratio = b_early.rss > 0.0 ? b_late.rss / b_early.rss : 0.0;
  const double u_rss_ratio = u_early.rss > 0.0 ? u_late.rss / u_early.rss : 0.0;
  const double acc_gap =
      bounded.recurring_accuracy - unbounded.recurring_accuracy;

  const bool pass_cap = bounded.max_domains_seen <= max_domains;
  const bool pass_flat_p99 = b_p99_ratio <= 1.2;
  const bool pass_flat_rss = !rss_supported || b_rss_ratio <= 1.1;
  const bool baseline_grows =
      unbounded.max_domains_seen > bounded.max_domains_seen &&
      u_p99_ratio > b_p99_ratio && (!rss_supported || u_rss_ratio > 1.1);
  const bool pass_accuracy = acc_gap >= -0.03;

  std::printf(
      "[accept] cap<=%zu: %s (saw %zu) | bounded p99 late/early %.2f "
      "(<=1.2: %s) | bounded rss late/early %.2f (<=1.1: %s) | unbounded "
      "grows (K %zu, p99 %.2fx, rss %.2fx): %s | recurring acc bounded %.3f "
      "vs unbounded %.3f (gap %+.3f >= -0.03: %s)\n",
      max_domains, pass_cap ? "PASS" : "FAIL", bounded.max_domains_seen,
      b_p99_ratio, pass_flat_p99 ? "PASS" : "FAIL", b_rss_ratio,
      pass_flat_rss ? "PASS" : "FAIL", unbounded.max_domains_seen,
      u_p99_ratio, u_rss_ratio, baseline_grows ? "PASS" : "FAIL",
      bounded.recurring_accuracy, unbounded.recurring_accuracy, acc_gap,
      pass_accuracy ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"cycles\": %zu,\n"
      "  \"windows_per_phase\": %zu,\n"
      "  \"window_queries\": %zu,\n"
      "  \"dim\": %zu,\n"
      "  \"classes\": %d,\n"
      "  \"source_domains\": %d,\n"
      "  \"max_domains\": %zu,\n"
      "  \"adapt_min_batch\": %zu,\n"
      "  \"rss_supported\": %s,\n"
      "  \"bounded\": {\n"
      "    \"max_domains_seen\": %zu,\n"
      "    \"p99_late_over_early\": %.4f,\n"
      "    \"rss_late_over_early\": %.4f,\n"
      "    \"recurring_accuracy\": %.4f,\n"
      "    \"adaptation_rounds\": %llu,\n"
      "    \"adaptation_merged\": %llu,\n"
      "    \"adaptation_evicted\": %llu,\n"
      "    \"adaptation_overflow\": %llu,\n"
      "    \"windows\": [\n",
      p.cycles, p.windows_per_phase, p.window_queries, dim, classes, domains,
      max_domains, adapt_min_batch, rss_supported ? "true" : "false",
      bounded.max_domains_seen, b_p99_ratio, b_rss_ratio,
      bounded.recurring_accuracy,
      static_cast<unsigned long long>(bounded.final_stats.adaptation_rounds),
      static_cast<unsigned long long>(bounded.final_stats.adaptation_merged),
      static_cast<unsigned long long>(bounded.final_stats.adaptation_evicted),
      static_cast<unsigned long long>(
          bounded.final_stats.adaptation_overflow));
  emit_windows(f, bounded);
  std::fprintf(
      f,
      "    ]\n"
      "  },\n"
      "  \"unbounded\": {\n"
      "    \"max_domains_seen\": %zu,\n"
      "    \"p99_late_over_early\": %.4f,\n"
      "    \"rss_late_over_early\": %.4f,\n"
      "    \"recurring_accuracy\": %.4f,\n"
      "    \"adaptation_rounds\": %llu,\n"
      "    \"adaptation_overflow\": %llu,\n"
      "    \"windows\": [\n",
      unbounded.max_domains_seen, u_p99_ratio, u_rss_ratio,
      unbounded.recurring_accuracy,
      static_cast<unsigned long long>(unbounded.final_stats.adaptation_rounds),
      static_cast<unsigned long long>(
          unbounded.final_stats.adaptation_overflow));
  emit_windows(f, unbounded);
  std::fprintf(f,
               "    ]\n"
               "  },\n"
               "  \"accept\": {\n"
               "    \"bounded_bank_capped\": %s,\n"
               "    \"bounded_flat_p99\": %s,\n"
               "    \"bounded_flat_rss\": %s,\n"
               "    \"unbounded_baseline_grows\": %s,\n"
               "    \"recurring_accuracy_within_003\": %s\n"
               "  }\n"
               "}\n",
               pass_cap ? "true" : "false", pass_flat_p99 ? "true" : "false",
               pass_flat_rss ? "true" : "false",
               baseline_grows ? "true" : "false",
               pass_accuracy ? "true" : "false");
  std::fclose(f);
  std::printf("(json: %s)\n", out_path.c_str());
  return 0;
}
