// Figure 6(a) — "Efficiency of SMORE and CNN-based Algorithms on Server
// CPU": training time and inference latency per algorithm per dataset, plus
// the Sec 4.3.1 headline ratios:
//   training:  SMORE 11.64x faster than TENT, 18.81x than MDANs,
//              5.84x than DOMINO
//   inference: SMORE 4.07x faster than TENT, 4.63x than MDANs
// HDC timings include the split's amortized share of encoding. Results:
// results/fig6a_efficiency.csv.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "eval/experiment.hpp"
#include "eval/reporting.hpp"

namespace {
using namespace smore;
using namespace smore::bench;
}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Figure 6(a) reproduction: train time and inference latency of all "
      "five algorithms on the three datasets (server CPU).");
  cli.flag_double("scale", 0.0, "fraction of the paper's sample counts (<=0: per-dataset default)")
      .flag_bool("full", false, "paper scale (scale=1, dim=8192)")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("hd_epochs", 15, "OnlineHD refinement epochs")
      .flag_int("cnn_epochs", 4, "CNN training epochs")
      .flag_string("datasets", "DSADS,USC-HAD,PAMAP2", "dataset list")
      .flag_int("seed", 1, "seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bool full = cli.get_bool("full");
  const bool smoke = cli.get_bool("smoke");
  const double scale = smoke ? 0.03 : full ? 1.0 : cli.get_double("scale");
  const std::size_t dim =
      smoke ? 512 : full ? 8192 : static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  SuiteConfig cfg;
  cfg.dim = dim;
  cfg.hd_epochs = smoke ? 2 : static_cast<int>(cli.get_int("hd_epochs"));
  cfg.cnn_epochs = smoke ? 1 : static_cast<int>(cli.get_int("cnn_epochs"));
  cfg.seed = seed;

  std::vector<std::string> names;
  {
    std::string list = smoke ? "USC-HAD" : cli.get_string("datasets");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const std::size_t comma = list.find(',', pos);
      names.push_back(
          list.substr(pos, comma == std::string::npos ? comma : comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  CsvWriter csv(results_path("fig6a_efficiency"),
                {"dataset", "algorithm", "train_seconds", "infer_seconds",
                 "queries_per_second", "encode_windows_per_second",
                 "accuracy"});
  // Sums over datasets (the paper reports the per-dataset averages over
  // domains; the headline ratios average everything).
  std::map<Algo, double> train_sum;
  std::map<Algo, double> infer_sum;

  for (const auto& name : names) {
    const EncodedBundle bundle = prepare(spec_by_name(name, scale, seed), dim);
    cfg.encode_seconds_per_sample = bundle.encode_seconds_per_sample;
    const int domains = bundle.raw.num_domains();

    print_banner("Figure 6(a): " + name +
                 " average train / inference seconds over LODO folds");
    TablePrinter table({"algorithm", "train (s)", "inference (s)",
                        "queries/s", "encode windows/s", "accuracy (%)"});
    for (const Algo algo : all_algos()) {
      double train_s = 0.0;
      double infer_s = 0.0;
      double acc = 0.0;
      double queries = 0.0;
      double encode_wps = 0.0;
      for (int d = 0; d < domains; ++d) {
        const Split fold = lodo_split(bundle.raw, d);
        const AlgoRunResult r =
            run_algorithm(algo, bundle.raw, bundle.encoded, fold, cfg);
        train_s += r.train_seconds;
        infer_s += r.infer_seconds;
        acc += r.accuracy;
        queries += static_cast<double>(fold.test.size());
        encode_wps += r.encode_windows_per_second;
      }
      // End-to-end inference throughput over all folds (the HDC algorithms
      // run the batched similarity-matrix path, and since the batched
      // encoding engine their windows reach hyperspace through encode_batch
      // as well — encode windows/s reports that stage's throughput).
      const double qps = infer_s > 0.0 ? queries / infer_s : 0.0;
      train_s /= domains;
      infer_s /= domains;
      acc /= domains;
      encode_wps /= domains;
      train_sum[algo] += train_s;
      infer_sum[algo] += infer_s;
      const bool is_cnn = algo_workload(algo) == WorkloadKind::kCnnInference;
      table.row({algo_name(algo), fmt(train_s, 3), fmt(infer_s, 3), fmt(qps, 0),
                 is_cnn ? std::string("-") : fmt(encode_wps, 0),
                 fmt(100 * acc, 1)});
      csv.row_values(name, algo_name(algo), train_s, infer_s, qps, encode_wps,
                     acc);
      std::printf("  %s done\n", algo_name(algo));
      std::fflush(stdout);
    }
    table.print();
  }

  print_banner("Sec 4.3.1 headline speedups (SMORE vs baselines)");
  TablePrinter head({"ratio", "paper", "measured", "shape holds?"});
  auto ratio = [&](const std::map<Algo, double>& m, Algo a) {
    return m.at(a) / m.at(Algo::kSmore);
  };
  struct Row {
    const char* label;
    const char* paper;
    double measured;
  };
  const Row rows[] = {
      {"train TENT / SMORE", "11.64x", ratio(train_sum, Algo::kTent)},
      {"train MDANs / SMORE", "18.81x", ratio(train_sum, Algo::kMdans)},
      {"train DOMINO / SMORE", "5.84x", ratio(train_sum, Algo::kDomino)},
      {"infer TENT / SMORE", "4.07x", ratio(infer_sum, Algo::kTent)},
      {"infer MDANs / SMORE", "4.63x", ratio(infer_sum, Algo::kMdans)},
  };
  for (const Row& r : rows) {
    head.row({r.label, r.paper, fmt_speedup(r.measured),
              r.measured > 1.0 ? "yes" : "NO"});
  }
  head.print();
  std::printf("\n(csv: %s)\n", results_path("fig6a_efficiency").c_str());
  return 0;
}
