// Figure 1(b) — motivation: SOTA HDC (BaselineHD = OnlineHD [22], nonlinear
// random-projection encoding + single model) converges at a notably lower
// accuracy under leave-one-domain-out CV than under standard k-fold CV,
// regardless of (left panel) hyperdimension and (right panel) training
// iterations. k-fold leaks every domain into training (random sampling),
// which is precisely why it overstates robustness to shift.
//
// Output: two series pairs on the USC-HAD-like dataset —
//   accuracy vs dimension {0.5k, 1k, 2k, 4k, 6k}  (LODO vs k-fold)
//   accuracy vs iterations {10..50}                (LODO vs k-fold, d=2k)
// written to results/fig1b_dims.csv and results/fig1b_iters.csv.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "data/normalize.hpp"
#include "eval/reporting.hpp"
#include "hdc/onlinehd.hpp"
#include "hdc/projection_encoder.hpp"

namespace {

using namespace smore;
using namespace smore::bench;

/// Mean BaselineHD test accuracy over folds, probed at the checkpoint epochs
/// in `checkpoints` (ascending). One accuracy per checkpoint. Each fold uses
/// the BaselineHD pipeline end-to-end: train-split normalization, projection
/// encoding, OnlineHD training.
std::vector<double> accuracy_at_checkpoints(const WindowDataset& raw,
                                            std::size_t dim,
                                            const std::vector<Split>& folds,
                                            const std::vector<int>& checkpoints,
                                            float lr, std::uint64_t seed) {
  std::vector<double> acc(checkpoints.size(), 0.0);
  for (const Split& fold : folds) {
    ChannelNormalizer norm;
    norm.fit(raw, fold.train);
    const WindowDataset normalized = norm.transform(raw);
    ProjectionEncoderConfig pc;
    pc.dim = dim;
    pc.seed = seed ^ 0x09e14d;
    const ProjectionEncoder encoder(pc);
    const HvDataset train = encoder.encode_dataset(take(normalized, fold.train));
    const HvDataset test = encoder.encode_dataset(take(normalized, fold.test));

    OnlineHDClassifier model(raw.num_classes(), dim);
    Rng rng(seed);
    std::vector<std::size_t> order(train.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (const std::size_t i : order) {
      model.bootstrap(train.row(i), train.label(i));
    }
    int epoch = 0;
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      for (; epoch < checkpoints[c]; ++epoch) {
        rng.shuffle(order);
        for (const std::size_t i : order) {
          model.refine(train.row(i), train.label(i), lr);
        }
      }
      acc[c] += model.accuracy(test);
    }
  }
  for (auto& a : acc) a /= static_cast<double>(folds.size());
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Figure 1(b) reproduction: LODO vs standard k-fold CV of BaselineHD "
      "(OnlineHD pipeline) on USC-HAD, across hyperdimensions and training "
      "iterations.");
  cli.flag_double("scale", 0.05, "fraction of USC-HAD sample counts")
      .flag_bool("full", false, "paper scale (scale=1)")
      .flag_int("kfold", 5, "k for the leaky random CV")
      .flag_int("iters", 20, "training iterations for the dimension sweep")
      .flag_double("lr", 0.035, "OnlineHD learning rate")
      .flag_int("seed", 1, "seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bool smoke = cli.get_bool("smoke");
  const double scale =
      smoke ? 0.03 : cli.get_bool("full") ? 1.0 : cli.get_double("scale");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto lr = static_cast<float>(cli.get_double("lr"));
  const int k = static_cast<int>(cli.get_int("kfold"));

  const SyntheticSpec spec = spec_by_name("USC-HAD", scale, seed);
  const WindowDataset raw = generate_dataset(spec);
  std::printf("[prepare] USC-HAD N=%zu domains=%d classes=%d\n", raw.size(),
              raw.num_domains(), raw.num_classes());

  const std::vector<Split> lodo = lodo_folds(raw);
  const std::vector<Split> kfold = kfold_splits(raw.size(), k, seed);

  // ---- left panel: accuracy vs dimension ----
  print_banner("Figure 1(b) left: accuracy vs hyperdimension");
  const std::vector<std::size_t> dims =
      smoke ? std::vector<std::size_t>{256, 512}
            : std::vector<std::size_t>{512, 1024, 2048, 4096, 6144};
  const std::vector<int> iter_probe{
      smoke ? 3 : static_cast<int>(cli.get_int("iters"))};
  CsvWriter csv_dims(results_path("fig1b_dims"),
                     {"dim", "lodo_accuracy", "kfold_accuracy"});
  TablePrinter t_dims({"dim", "LODO acc (%)", "k-fold acc (%)", "gap (pp)"});
  for (const std::size_t d : dims) {
    const double a_lodo =
        accuracy_at_checkpoints(raw, d, lodo, iter_probe, lr, seed)[0];
    const double a_kfold =
        accuracy_at_checkpoints(raw, d, kfold, iter_probe, lr, seed)[0];
    t_dims.row({std::to_string(d), fmt(100 * a_lodo), fmt(100 * a_kfold),
                fmt(100 * (a_kfold - a_lodo))});
    csv_dims.row_values(d, a_lodo, a_kfold);
    std::printf("  dim %zu done\n", d);
    std::fflush(stdout);
  }
  t_dims.print();

  // ---- right panel: accuracy vs iterations (d = 2k) ----
  print_banner("Figure 1(b) right: accuracy vs training iterations (d=2048)");
  const std::vector<int> checkpoints =
      smoke ? std::vector<int>{3, 6} : std::vector<int>{10, 20, 30, 40, 50};
  const std::size_t right_dim = smoke ? 512 : 2048;
  const std::vector<double> a_lodo =
      accuracy_at_checkpoints(raw, right_dim, lodo, checkpoints, lr, seed);
  const std::vector<double> a_kfold =
      accuracy_at_checkpoints(raw, right_dim, kfold, checkpoints, lr, seed);
  CsvWriter csv_iters(results_path("fig1b_iters"),
                      {"iterations", "lodo_accuracy", "kfold_accuracy"});
  TablePrinter t_iters(
      {"iterations", "LODO acc (%)", "k-fold acc (%)", "gap (pp)"});
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    t_iters.row({std::to_string(checkpoints[c]), fmt(100 * a_lodo[c]),
                 fmt(100 * a_kfold[c]), fmt(100 * (a_kfold[c] - a_lodo[c]))});
    csv_iters.row_values(checkpoints[c], a_lodo[c], a_kfold[c]);
  }
  t_iters.print();

  std::printf(
      "\nPaper's point: k-fold CV inflates accuracy via domain leakage — the "
      "LODO curve converges well below the k-fold curve at every dimension "
      "and iteration count.\n(csv: %s, %s)\n",
      results_path("fig1b_dims").c_str(), results_path("fig1b_iters").c_str());
  return 0;
}
