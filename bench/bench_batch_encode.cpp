// Per-window vs batched encode throughput: the headline numbers of the
// batched encoding engine. Times both encoders on identical random windows:
//
//   multi-sensor encoder (Sec 3.3):
//     per-window — the pre-batching path: MultiSensorEncoder::encode per
//                  window with reused scratch (the old encode_dataset body:
//                  level materialization + rotate/hadamard/axpy per gram);
//     batch 1T   — encode_batch with parallelism disabled (adds the level
//                  bank + fused ngram_axpy kernel win);
//     batch MT   — encode_batch over the global ThreadPool (adds the
//                  thread-blocking win; equals 1T on single-core hosts).
//
//   projection encoder (BaselineHD):
//     per-window — the pre-batching loop: one ops::dot per output dimension
//                  per window (D row-dots, projection rows re-streamed for
//                  every window);
//     batch 1T/MT — ops::project_cos_matrix (cache-blocked GEMM + fused cos
//                  epilogue), serial and thread-pooled.
//
// Batch outputs are checked bit-identical to the scalar paths (the
// equivalence tests pin this too; for the projection encoder the reference
// is its batch-of-one encode(), whose fused-kernel dot order differs from
// the legacy loop — the legacy comparison is reported as max |diff|).
// Emits BENCH_batch_encode.json for CI tracking. Defaults match the
// engine's acceptance scenario: 10k windows × 4096 dims.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "data/timeseries.hpp"
#include "eval/timer.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/ops.hpp"
#include "hdc/projection_encoder.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

/// Best-of-repeats wall-clock seconds for `body`.
template <typename F>
double best_seconds(int repeats, F&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    body();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

bool rows_bit_identical(const HvMatrix& a, const HvMatrix& b) {
  if (a.rows() != b.rows() || a.dim() != b.dim()) return false;
  return std::memcmp(a.data(), b.data(),
                     a.rows() * a.dim() * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Per-window vs batched encode throughput (windows/sec) for the "
      "multi-sensor and projection encoders; emits BENCH_batch_encode.json.");
  cli.flag_int("windows", 10000, "number of windows")
      .flag_int("channels", 3, "sensor channels per window")
      .flag_int("steps", 32, "timesteps per window")
      .flag_int("dim", 4096, "hyperdimension")
      .flag_int("repeats", 2, "timing repeats (best taken)")
      .flag_bool("skip_projection", false, "only bench the multi-sensor encoder")
      .flag_string("out", "BENCH_batch_encode.json", "JSON output path")
      .flag_int("seed", 42, "data seed");
  bench::add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_bool("smoke");
  const auto n =
      smoke ? std::size_t{500} : static_cast<std::size_t>(cli.get_int("windows"));
  const auto channels = static_cast<std::size_t>(cli.get_int("channels"));
  const auto steps = static_cast<std::size_t>(cli.get_int("steps"));
  const auto dim =
      smoke ? std::size_t{512} : static_cast<std::size_t>(cli.get_int("dim"));
  const int repeats = smoke ? 1 : static_cast<int>(cli.get_int("repeats"));
  const std::string out_path = cli.get_string("out");

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  WindowDataset data("bench", channels, steps);
  for (std::size_t i = 0; i < n; ++i) {
    Window w(channels, steps);
    for (float& v : w.values()) v = rng.uniform_f(-2.0f, 2.0f);
    data.add(w);
  }

  std::printf("[bench] %zu windows x %zu ch x %zu steps -> d=%zu (%d repeats)\n",
              n, channels, steps, dim, repeats);

  // ---------------------------------------------------- multi-sensor encoder
  EncoderConfig ec;
  ec.dim = dim;
  const MultiSensorEncoder encoder(ec);
  encoder.prepare(channels);

  HvMatrix scalar_out(n, dim);
  HvMatrix batch_out;

  const double ms_scalar_s = best_seconds(repeats, [&] {
    // The pre-batching hot loop: per-window encode with reused scratch, then
    // a row copy — exactly what encode_dataset did before the batch engine.
    EncodeScratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
      const Hypervector hv = encoder.encode(data[i], scratch, i);
      std::copy(hv.data(), hv.data() + dim, scalar_out.row(i).begin());
    }
  });
  const double ms_batch_1t_s = best_seconds(
      repeats, [&] { encoder.encode_batch(data, batch_out, /*parallel=*/false); });
  const bool ms_identical = rows_bit_identical(scalar_out, batch_out);
  const double ms_batch_mt_s = best_seconds(
      repeats, [&] { encoder.encode_batch(data, batch_out, /*parallel=*/true); });
  const bool ms_mt_identical = rows_bit_identical(scalar_out, batch_out);

  const double nd = static_cast<double>(n);
  const unsigned threads = std::thread::hardware_concurrency();
  std::printf("  multi-sensor per-window: %8.3f s  %10.0f windows/s\n",
              ms_scalar_s, nd / ms_scalar_s);
  std::printf("  multi-sensor batch (1T): %8.3f s  %10.0f windows/s  (%.2fx)\n",
              ms_batch_1t_s, nd / ms_batch_1t_s, ms_scalar_s / ms_batch_1t_s);
  std::printf("  multi-sensor batch (MT): %8.3f s  %10.0f windows/s  (%.2fx, %u hw threads)\n",
              ms_batch_mt_s, nd / ms_batch_mt_s, ms_scalar_s / ms_batch_mt_s,
              threads);
  std::printf("  bit-identical: 1T %s, MT %s\n", ms_identical ? "yes" : "NO",
              ms_mt_identical ? "yes" : "NO");

  // ----------------------------------------------------- projection encoder
  double pj_scalar_s = 0.0;
  double pj_batch_1t_s = 0.0;
  double pj_batch_mt_s = 0.0;
  double pj_legacy_max_diff = 0.0;
  bool pj_identical = true;
  if (!cli.get_bool("skip_projection")) {
    ProjectionEncoderConfig pc;
    pc.dim = dim;
    const ProjectionEncoder proj(pc);

    // The pre-refactor per-window path: D row-dots + cos per window, the
    // projection matrix re-streamed for every window. The matrix is
    // regenerated here from the documented construction (w ~ N(0, 1/sqrt(F)),
    // b ~ U[0, 2π) from Rng(seed)) since the encoder no longer exposes it.
    const std::size_t features = channels * steps;
    std::vector<float> legacy_w(dim * features);
    std::vector<float> legacy_b(dim);
    {
      Rng wrng(pc.seed);
      const double scale = 1.0 / std::sqrt(static_cast<double>(features));
      for (auto& w : legacy_w) w = static_cast<float>(wrng.normal(0.0, scale));
      for (auto& b : legacy_b) {
        b = static_cast<float>(wrng.uniform(0.0, 2.0 * 3.14159265358979323846));
      }
    }
    pj_scalar_s = best_seconds(repeats, [&] {
      for (std::size_t i = 0; i < n; ++i) {
        const float* x = data[i].values().data();
        float* row = scalar_out.row(i).data();
        for (std::size_t j = 0; j < dim; ++j) {
          const double acc =
              legacy_b[j] + ops::dot(legacy_w.data() + j * features, x, features);
          row[j] = static_cast<float>(std::cos(acc));
        }
      }
    });
    pj_batch_1t_s = best_seconds(
        repeats, [&] { proj.encode_batch(data, batch_out, /*parallel=*/false); });
    // Legacy and batch accumulate the dots in a different order, so they
    // agree to rounding, not bitwise; report the max gap.
    for (std::size_t i = 0; i < n * dim; ++i) {
      const double diff = std::fabs(static_cast<double>(scalar_out.data()[i]) -
                                    static_cast<double>(batch_out.data()[i]));
      if (diff > pj_legacy_max_diff) pj_legacy_max_diff = diff;
    }
    const HvMatrix serial_out = batch_out;  // keep the 1T rows for the checks
    pj_batch_mt_s = best_seconds(
        repeats, [&] { proj.encode_batch(data, batch_out, /*parallel=*/true); });
    // Bit-identity holds between today's scalar API (encode(): batch of one
    // through the same kernel) and the batch rows, for any thread count.
    pj_identical = rows_bit_identical(serial_out, batch_out);
    for (std::size_t i = 0; i < std::min<std::size_t>(n, 256); ++i) {
      const Hypervector hv = proj.encode(data[i]);
      pj_identical = pj_identical &&
                     std::memcmp(hv.data(), batch_out.row(i).data(),
                                 dim * sizeof(float)) == 0;
    }

    std::printf("  projection per-window  : %8.3f s  %10.0f windows/s\n",
                pj_scalar_s, nd / pj_scalar_s);
    std::printf("  projection batch (1T)  : %8.3f s  %10.0f windows/s  (%.2fx)\n",
                pj_batch_1t_s, nd / pj_batch_1t_s, pj_scalar_s / pj_batch_1t_s);
    std::printf("  projection batch (MT)  : %8.3f s  %10.0f windows/s  (%.2fx)\n",
                pj_batch_mt_s, nd / pj_batch_mt_s, pj_scalar_s / pj_batch_mt_s);
    std::printf("  scalar/batch bit-identical: %s   max |legacy - batch| = %.3g\n",
                pj_identical ? "yes" : "NO", pj_legacy_max_diff);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"windows\": %zu,\n"
      "  \"channels\": %zu,\n"
      "  \"steps\": %zu,\n"
      "  \"dim\": %zu,\n"
      "  \"hardware_threads\": %u,\n"
      "  \"multisensor_per_window_seconds\": %.6f,\n"
      "  \"multisensor_batch_single_thread_seconds\": %.6f,\n"
      "  \"multisensor_batch_multi_thread_seconds\": %.6f,\n"
      "  \"multisensor_per_window_windows_per_second\": %.1f,\n"
      "  \"multisensor_batch_single_thread_windows_per_second\": %.1f,\n"
      "  \"multisensor_batch_multi_thread_windows_per_second\": %.1f,\n"
      "  \"speedup_single_thread\": %.3f,\n"
      "  \"speedup_multi_thread\": %.3f,\n"
      "  \"multisensor_bit_identical\": %s,\n"
      "  \"projection_per_window_seconds\": %.6f,\n"
      "  \"projection_batch_single_thread_seconds\": %.6f,\n"
      "  \"projection_batch_multi_thread_seconds\": %.6f,\n"
      "  \"projection_speedup_single_thread\": %.3f,\n"
      "  \"projection_speedup_multi_thread\": %.3f,\n"
      "  \"projection_bit_identical\": %s,\n"
      "  \"projection_vs_legacy_max_abs_diff\": %.3g\n"
      "}\n",
      n, channels, steps, dim, threads, ms_scalar_s, ms_batch_1t_s,
      ms_batch_mt_s, nd / ms_scalar_s, nd / ms_batch_1t_s, nd / ms_batch_mt_s,
      ms_scalar_s / ms_batch_1t_s, ms_scalar_s / ms_batch_mt_s,
      (ms_identical && ms_mt_identical) ? "true" : "false",
      pj_scalar_s, pj_batch_1t_s, pj_batch_mt_s,
      pj_batch_1t_s > 0.0 ? pj_scalar_s / pj_batch_1t_s : 0.0,
      pj_batch_mt_s > 0.0 ? pj_scalar_s / pj_batch_mt_s : 0.0,
      pj_identical ? "true" : "false", pj_legacy_max_diff);
  std::fclose(f);
  std::printf("(json: %s)\n", out_path.c_str());
  return 0;
}
