// Runtime-dispatch kernel bench (DESIGN.md §11): per-kernel throughput for
// every tier this host can execute (forced via SMORE_KERNEL between runs),
// plus the auto-dispatch row — the fat binary's acceptance story. Emits
// BENCH_dispatch.json.
//
// The acceptance comparison is fat-binary-auto vs a -march=native build of
// the SAME source (both builds dispatch to the same per-TU kernel variants;
// native additionally compiles the non-kernel code natively). Run the
// native build first, then pass its numbers to the fat build:
//
//   (native build) bench_dispatch --out BENCH_dispatch_native.json
//   (fat build)    bench_dispatch --ref-similarity-qps <native qps>
//                                 --ref-hamming-qps  <native qps>
//
// The fat run then records auto_vs_native ratios and acceptance_pass
// (>= 0.90 for both end-to-end kernels at the default 10k x 4096 scale).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "eval/timer.hpp"
#include "hdc/bit_matrix.hpp"
#include "hdc/dispatch.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/ops.hpp"
#include "hdc/ops_binary.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

template <typename F>
double best_seconds(int repeats, F&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    body();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

/// Per-tier throughput snapshot (queries/s, grams/s, rows/s...).
struct TierRow {
  std::string tier;
  double dot_melems_per_s = 0.0;
  double similarity_qps = 0.0;
  double ngram_grams_per_s = 0.0;
  double project_windows_per_s = 0.0;
  double sign_pack_rows_per_s = 0.0;
  double hamming_qps = 0.0;
};

void select(const char* kernel_env) {
  if (kernel_env == nullptr) {
    ::unsetenv("SMORE_KERNEL");
  } else {
    ::setenv("SMORE_KERNEL", kernel_env, 1);
  }
  kern::reinitialize_dispatch();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Per-kernel throughput for every executable dispatch tier plus the "
      "auto-dispatch row; emits BENCH_dispatch.json. Pass a native build's "
      "numbers via --ref-*-qps to record fat-vs-native acceptance ratios.");
  cli.flag_int("queries", 10000, "queries for the end-to-end matrix kernels")
      .flag_int("classes", 16, "prototype rows for the matrix kernels")
      .flag_int("dim", 4096, "hyperdimension")
      .flag_int("repeats", 3, "timing repeats (best taken)")
      .flag_string("out", "BENCH_dispatch.json", "JSON output path")
      .flag_string("ref-similarity-qps", "0",
                   "similarity_matrix queries/s from the -march=native build")
      .flag_string("ref-hamming-qps", "0",
                   "hamming_matrix queries/s from the -march=native build")
      .flag_int("seed", 42, "data seed");
  bench::add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  auto nq = static_cast<std::size_t>(cli.get_int("queries"));
  auto nc = static_cast<std::size_t>(cli.get_int("classes"));
  auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  int repeats = static_cast<int>(cli.get_int("repeats"));
  if (cli.get_bool("smoke")) {
    nq = 1000;
    nc = 8;
    dim = 512;
    repeats = 1;
  }
  const std::string out_path = cli.get_string("out");
  const double ref_similarity_qps =
      std::atof(cli.get_string("ref-similarity-qps").c_str());
  const double ref_hamming_qps =
      std::atof(cli.get_string("ref-hamming-qps").c_str());

#if defined(SMORE_NATIVE_ARCH_BUILD)
  const char* build_flavor = "native";
#else
  const char* build_flavor = "fat";
#endif

  // ------------------------------------------------------------- test data
  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  HvMatrix queries(nq, dim);
  for (std::size_t i = 0; i < nq * dim; ++i) {
    queries.data()[i] = static_cast<float>(rng.normal());
  }
  HvMatrix protos(nc, dim);
  for (std::size_t i = 0; i < nc * dim; ++i) {
    protos.data()[i] = static_cast<float>(rng.normal());
  }
  const BitMatrix qbits = ops::sign_pack_matrix(queries.view());
  const BitMatrix pbits = ops::sign_pack_matrix(protos.view());

  // n-gram workload: 3 factors at encoder-typical shifts.
  const std::size_t n_factors = 3;
  std::vector<std::vector<float>> level_store;
  std::vector<const float*> levels;
  std::vector<std::size_t> shifts;
  for (std::size_t p = 0; p < n_factors; ++p) {
    level_store.emplace_back(dim);
    for (auto& x : level_store.back()) x = static_cast<float>(rng.normal());
    levels.push_back(level_store.back().data());
    shifts.push_back(p);
  }
  std::vector<float> ngram_acc(dim, 0.0f);

  // projection workload: encoder-typical feature count.
  const std::size_t proj_windows = std::min<std::size_t>(nq, 256);
  const std::size_t features = 54;
  std::vector<float> proj_x(proj_windows * features);
  std::vector<float> proj_wt(features * dim);
  std::vector<float> proj_bias(dim);
  for (auto& x : proj_x) x = static_cast<float>(rng.normal());
  for (auto& x : proj_wt) x = static_cast<float>(rng.normal());
  for (auto& x : proj_bias) x = static_cast<float>(rng.normal());
  std::vector<float> proj_out(proj_windows * dim);

  std::vector<double> sims(nq * nc);
  std::vector<std::size_t> dists(nq * nc);
  BitMatrix pack_out(nq, dim);
  const std::size_t dot_n = dim;
  const int dot_iters = 2000;

  const auto measure = [&](const std::string& label) {
    TierRow row;
    row.tier = label;
    const double dot_s = best_seconds(repeats, [&] {
      double sink = 0.0;
      for (int i = 0; i < dot_iters; ++i) {
        sink += ops::dot(queries.row(i % nq).data(),
                         protos.row(i % nc).data(), dot_n);
      }
      if (sink == 0.12345) std::printf(" ");  // keep the loop observable
    });
    row.dot_melems_per_s =
        static_cast<double>(dot_iters) * static_cast<double>(dot_n) / dot_s /
        1e6;
    // The similarity pass is the acceptance-gating number and only ~0.1 s
    // per repeat; sample it over 3x the repeats so best-of rides out
    // scheduler-steal bursts on shared hosts.
    const double sim_s = best_seconds(repeats * 3, [&] {
      ops::similarity_matrix(queries.data(), nq, protos.data(), nc, dim,
                             sims.data(), nullptr, /*parallel=*/true);
    });
    row.similarity_qps = static_cast<double>(nq) / sim_s;
    const int ngram_iters = 500;
    const double ngram_s = best_seconds(repeats, [&] {
      for (int i = 0; i < ngram_iters; ++i) {
        ops::ngram_axpy(levels.data(), shifts.data(), n_factors, dim, 0.5f,
                        ngram_acc.data());
      }
    });
    row.ngram_grams_per_s = static_cast<double>(ngram_iters) / ngram_s;
    const double proj_s = best_seconds(repeats, [&] {
      ops::project_cos_matrix(proj_x.data(), proj_windows, proj_wt.data(),
                              dim, features, proj_bias.data(),
                              proj_out.data(), /*parallel=*/true);
    });
    row.project_windows_per_s = static_cast<double>(proj_windows) / proj_s;
    const double pack_s = best_seconds(repeats, [&] {
      ops::sign_pack_matrix(queries.data(), nq, dim, pack_out.data(),
                            pack_out.words_per_row(), /*parallel=*/true);
    });
    row.sign_pack_rows_per_s = static_cast<double>(nq) / pack_s;
    // One hamming_matrix pass is ~1-2 ms at the default scale — far below
    // scheduler noise on shared hosts — so each repeat times a batch.
    const int ham_iters = 20;
    const double ham_s = best_seconds(repeats, [&] {
      for (int i = 0; i < ham_iters; ++i) {
        ops::hamming_matrix(qbits.data(), nq, pbits.data(), nc,
                            qbits.words_per_row(), dists.data(),
                            /*parallel=*/true);
      }
    });
    row.hamming_qps =
        static_cast<double>(nq) * static_cast<double>(ham_iters) / ham_s;
    return row;
  };

  std::printf("[bench] dispatch kernels: %zu queries x %zu protos x d=%zu "
              "(%d repeats, %s build)\n",
              nq, nc, dim, repeats, build_flavor);
  std::printf("%-10s %14s %12s %10s %12s %12s %12s\n", "tier", "dot Melem/s",
              "sim q/s", "ngram/s", "proj win/s", "pack row/s", "ham q/s");

  // ------------------------------------------- forced tiers, then auto row
  std::vector<TierRow> rows;
  for (int t = 0; t < kern::kNumTiers; ++t) {
    const auto tier = static_cast<kern::IsaTier>(t);
    if (!kern::tier_supported(tier)) continue;
    select(kern::tier_name(tier));
    rows.push_back(measure(kern::tier_name(tier)));
    const TierRow& r = rows.back();
    std::printf("%-10s %14.0f %12.0f %10.0f %12.0f %12.0f %12.0f\n",
                r.tier.c_str(), r.dot_melems_per_s, r.similarity_qps,
                r.ngram_grams_per_s, r.project_windows_per_s,
                r.sign_pack_rows_per_s, r.hamming_qps);
  }
  select(nullptr);  // auto
  const std::string auto_tier = kern::tier_name(kern::dispatch().tier);
  rows.push_back(measure("auto"));
  {
    const TierRow& r = rows.back();
    std::printf("%-10s %14.0f %12.0f %10.0f %12.0f %12.0f %12.0f  "
                "(resolved: %s)\n",
                r.tier.c_str(), r.dot_melems_per_s, r.similarity_qps,
                r.ngram_grams_per_s, r.project_windows_per_s,
                r.sign_pack_rows_per_s, r.hamming_qps, auto_tier.c_str());
  }
  const TierRow& auto_row = rows.back();

  // ------------------------------------------------- fat-vs-native verdict
  double sim_ratio = 0.0, ham_ratio = 0.0;
  bool acceptance_pass = false;
  const bool have_ref = ref_similarity_qps > 0.0 && ref_hamming_qps > 0.0;
  if (have_ref) {
    sim_ratio = auto_row.similarity_qps / ref_similarity_qps;
    ham_ratio = auto_row.hamming_qps / ref_hamming_qps;
    acceptance_pass = sim_ratio >= 0.90 && ham_ratio >= 0.90;
    std::printf("  auto vs native ref: similarity %.3f  hamming %.3f  "
                "(acceptance >= 0.90: %s)\n",
                sim_ratio, ham_ratio, acceptance_pass ? "PASS" : "FAIL");
  }

  // ------------------------------------------------------------------ JSON
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"build\": \"%s\",\n"
               "  \"auto_tier\": \"%s\",\n"
               "  \"queries\": %zu,\n"
               "  \"classes\": %zu,\n"
               "  \"dim\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"tiers\": [\n",
               build_flavor, auto_tier.c_str(), nq, nc, dim,
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TierRow& r = rows[i];
    std::fprintf(f,
                 "    {\"tier\": \"%s\", \"dot_melems_per_second\": %.1f, "
                 "\"similarity_matrix_queries_per_second\": %.1f, "
                 "\"ngram_axpy_grams_per_second\": %.1f, "
                 "\"project_cos_windows_per_second\": %.1f, "
                 "\"sign_pack_rows_per_second\": %.1f, "
                 "\"hamming_matrix_queries_per_second\": %.1f}%s\n",
                 r.tier.c_str(), r.dot_melems_per_s, r.similarity_qps,
                 r.ngram_grams_per_s, r.project_windows_per_s,
                 r.sign_pack_rows_per_s, r.hamming_qps,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"native_ref_similarity_queries_per_second\": %.1f,\n"
               "  \"native_ref_hamming_queries_per_second\": %.1f,\n"
               "  \"auto_vs_native_similarity\": %.4f,\n"
               "  \"auto_vs_native_hamming\": %.4f,\n"
               "  \"acceptance_threshold\": 0.90,\n"
               "  \"acceptance_pass\": %s\n"
               "}\n",
               ref_similarity_qps, ref_hamming_qps, sim_ratio, ham_ratio,
               have_ref ? (acceptance_pass ? "true" : "false") : "null");
  std::fclose(f);
  std::printf("(json: %s)\n", out_path.c_str());
  return 0;
}
