// Microbenchmarks of the HDC primitives (google-benchmark): the operations
// Sec 3.1 builds everything from — bundling, binding, permutation, cosine —
// plus the full multi-sensor window encode and the three prediction paths
// (OnlineHD argmax, SMORE Algorithm 1, materialized test-time model). These
// quantify the "highly parallel and efficient operations" the paper credits
// for its speedups, and the Gram-trick benefit documented in
// core/test_time_model.hpp.

#include <benchmark/benchmark.h>

#include "core/smore.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/onlinehd.hpp"

namespace {

using namespace smore;

Hypervector make_hv(std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  return Hypervector::random_bipolar(dim, rng);
}

void BM_Bundle(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Hypervector acc(dim);
  const Hypervector h = make_hv(dim, 1);
  for (auto _ : state) {
    acc += h;
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dim) * sizeof(float));
}
BENCHMARK(BM_Bundle)->Arg(2048)->Arg(8192);

void BM_Bind(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Hypervector a = make_hv(dim, 1);
  const Hypervector b = make_hv(dim, 2);
  for (auto _ : state) {
    a *= b;
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dim) * sizeof(float));
}
BENCHMARK(BM_Bind)->Arg(2048)->Arg(8192);

void BM_Permute(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const Hypervector h = make_hv(dim, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(permute(h, 3));
  }
}
BENCHMARK(BM_Permute)->Arg(2048)->Arg(8192);

void BM_Cosine(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const Hypervector a = make_hv(dim, 1);
  const Hypervector b = make_hv(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cosine_similarity(a, b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(dim) * 2 * sizeof(float));
}
BENCHMARK(BM_Cosine)->Arg(2048)->Arg(8192);

void BM_EncodeWindow(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto channels = static_cast<std::size_t>(state.range(1));
  SyntheticSpec spec = uschad_spec(0.001, 3);
  spec.channels = channels;
  const MultiChannelStream stream = generate_stream(spec, 0, 0, 126);
  Window window(channels, 126);
  for (std::size_t c = 0; c < channels; ++c) {
    const auto src = stream.channel(c);
    std::copy(src.begin(), src.end(), window.channel(c).begin());
  }
  EncoderConfig ec;
  ec.dim = dim;
  MultiSensorEncoder enc(ec);
  enc.prepare(channels);
  EncodeScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.encode(window, scratch));
  }
}
BENCHMARK(BM_EncodeWindow)
    ->Args({2048, 6})
    ->Args({8192, 6})
    ->Args({2048, 45});

struct PredictFixture {
  HvDataset data{0};
  std::unique_ptr<SmoreModel> smore;
  std::unique_ptr<OnlineHDClassifier> pooled;

  explicit PredictFixture(std::size_t dim) {
    Rng rng(7);
    const int classes = 12;
    const int domains = 4;
    data = HvDataset(dim);
    std::vector<float> row(dim);
    std::vector<Hypervector> protos;
    for (int c = 0; c < classes; ++c) protos.push_back(make_hv(dim, 100 + c));
    for (int d = 0; d < domains; ++d) {
      for (int c = 0; c < classes; ++c) {
        for (int i = 0; i < 12; ++i) {
          for (std::size_t j = 0; j < dim; ++j) {
            row[j] = protos[static_cast<std::size_t>(c)][j] +
                     static_cast<float>(rng.normal(0.0, 0.5));
          }
          data.add(row, c, d);
        }
      }
    }
    OnlineHDConfig hd;
    hd.epochs = 3;
    smore = std::make_unique<SmoreModel>(classes, dim);
    smore->fit(data);
    pooled = std::make_unique<OnlineHDClassifier>(classes, dim);
    pooled->fit(data, hd);
  }
};

void BM_PredictOnlineHd(benchmark::State& state) {
  static const PredictFixture fx(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.pooled->predict(fx.data.row(i)));
    i = (i + 1) % fx.data.size();
  }
}
BENCHMARK(BM_PredictOnlineHd)->Arg(2048);

void BM_PredictSmoreGramPath(benchmark::State& state) {
  static const PredictFixture fx(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.smore->predict(fx.data.row(i)));
    i = (i + 1) % fx.data.size();
  }
}
BENCHMARK(BM_PredictSmoreGramPath)->Arg(2048);

void BM_PredictSmoreMaterialized(benchmark::State& state) {
  static const PredictFixture fx(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const TestTimeModel ttm =
        fx.smore->materialize_test_time_model(fx.data.row(i));
    benchmark::DoNotOptimize(ttm.predict(fx.data.row(i)));
    i = (i + 1) % fx.data.size();
  }
}
BENCHMARK(BM_PredictSmoreMaterialized)->Arg(2048);

// --- batched similarity engine ---------------------------------------------

/// The raw kernel: [queries × prototypes] cosine matrix, serial vs
/// thread-pooled, against the equivalent per-query ops::cosine loop.
void BM_SimilarityMatrix(benchmark::State& state) {
  const auto nq = static_cast<std::size_t>(state.range(0));
  const auto np = static_cast<std::size_t>(state.range(1));
  const auto dim = static_cast<std::size_t>(state.range(2));
  const bool parallel = state.range(3) != 0;
  Rng rng(11);
  HvMatrix queries(nq, dim);
  HvMatrix protos(np, dim);
  for (std::size_t i = 0; i < nq * dim; ++i) queries.data()[i] = rng.bipolar();
  for (std::size_t i = 0; i < np * dim; ++i) protos.data()[i] = rng.bipolar();
  std::vector<double> out(nq * np);
  for (auto _ : state) {
    ops::similarity_matrix(queries.data(), nq, protos.data(), np, dim,
                           out.data(), nullptr, parallel);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nq));
}
BENCHMARK(BM_SimilarityMatrix)
    ->Args({1024, 16, 4096, 0})
    ->Args({1024, 16, 4096, 1});

void BM_SimilarityScalarLoop(benchmark::State& state) {
  const auto nq = static_cast<std::size_t>(state.range(0));
  const auto np = static_cast<std::size_t>(state.range(1));
  const auto dim = static_cast<std::size_t>(state.range(2));
  Rng rng(11);
  HvMatrix queries(nq, dim);
  HvMatrix protos(np, dim);
  for (std::size_t i = 0; i < nq * dim; ++i) queries.data()[i] = rng.bipolar();
  for (std::size_t i = 0; i < np * dim; ++i) protos.data()[i] = rng.bipolar();
  std::vector<double> out(nq * np);
  for (auto _ : state) {
    for (std::size_t q = 0; q < nq; ++q) {
      for (std::size_t p = 0; p < np; ++p) {
        out[q * np + p] = ops::cosine(queries.row(q).data(),
                                      protos.row(p).data(), dim);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(nq));
}
BENCHMARK(BM_SimilarityScalarLoop)->Args({1024, 16, 4096});

/// Whole-dataset OnlineHD prediction through the batch API vs the per-query
/// wrapper loop.
void BM_PredictOnlineHdBatch(benchmark::State& state) {
  static const PredictFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.pooled->predict_batch(fx.data.view()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.data.size()));
}
BENCHMARK(BM_PredictOnlineHdBatch)->Arg(2048);

/// Whole-dataset SMORE Algorithm 1 through the batched engine.
void BM_PredictSmoreBatch(benchmark::State& state) {
  static const PredictFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.smore->predict_batch(fx.data.view()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.data.size()));
}
BENCHMARK(BM_PredictSmoreBatch)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
