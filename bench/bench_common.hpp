#pragma once
// Shared plumbing for the figure/table benches: dataset construction from
// flags, timed encoding, and CSV output locations.
//
// Scale note (DESIGN.md §7): the paper's server has 24 hardware threads;
// this environment exposes one core, so every bench defaults to a reduced
// sample scale and hyperdimension. All claims compared against the paper are
// *shape* claims (ordering, ratios, crossovers); `--scale`, `--dim`, and
// `--full` let a larger machine rerun at paper scale.

#include <cstdio>
#include <string>

#include "data/synthetic.hpp"
#include "eval/timer.hpp"
#include "hdc/encoder.hpp"
#include "hdc/hv_dataset.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace smore::bench {

/// Default per-dataset scale: the datasets differ 5× in total size and 1.6×
/// in class count, so a single global fraction starves DSADS (19 classes,
/// 9120 windows) long before USC-HAD (12 classes, 43374 windows). These
/// defaults equalize the windows-per-(class, domain) budget at roughly 30,
/// the smallest regime where all five algorithms are trainable.
inline double default_scale(const std::string& name) {
  if (name == "DSADS") return 0.25;
  if (name == "USC-HAD") return 0.05;
  if (name == "PAMAP2") return 0.10;
  throw std::invalid_argument("unknown dataset: " + name);
}

/// Resolve a dataset spec by paper name; scale <= 0 selects the per-dataset
/// default above.
inline SyntheticSpec spec_by_name(const std::string& name, double scale,
                                  std::uint64_t seed) {
  if (scale <= 0.0) scale = default_scale(name);
  if (name == "DSADS") return dsads_spec(scale, seed);
  if (name == "USC-HAD") return uschad_spec(scale, seed);
  if (name == "PAMAP2") return pamap2_spec(scale, seed);
  throw std::invalid_argument("unknown dataset: " + name +
                              " (expected DSADS, USC-HAD, or PAMAP2)");
}

/// A generated dataset together with its encoding and encode-cost accounting.
struct EncodedBundle {
  WindowDataset raw;
  HvDataset encoded;
  double generate_seconds = 0.0;
  double encode_seconds = 0.0;
  double encode_seconds_per_sample = 0.0;
  /// Batched-encode throughput (the whole dataset through encode_batch).
  double encode_windows_per_second = 0.0;
};

/// Generate and encode one dataset, reporting progress to stdout.
inline EncodedBundle prepare(const SyntheticSpec& spec, std::size_t dim,
                             std::size_t ngram = 3,
                             std::uint64_t encoder_seed = 0x5304e) {
  EncodedBundle bundle;
  {
    WallTimer t;
    bundle.raw = generate_dataset(spec);
    bundle.generate_seconds = t.seconds();
  }
  EncoderConfig ec;
  ec.dim = dim;
  ec.ngram = ngram;
  ec.seed = encoder_seed;
  const MultiSensorEncoder encoder(ec);
  {
    WallTimer t;
    bundle.encoded = encoder.encode_dataset(bundle.raw);
    bundle.encode_seconds = t.seconds();
  }
  bundle.encode_seconds_per_sample =
      bundle.raw.empty() ? 0.0
                         : bundle.encode_seconds /
                               static_cast<double>(bundle.raw.size());
  bundle.encode_windows_per_second =
      bundle.encode_seconds > 0.0
          ? static_cast<double>(bundle.raw.size()) / bundle.encode_seconds
          : 0.0;
  std::printf("[prepare] %-8s N=%zu channels=%zu steps=%zu domains=%d "
              "classes=%d | generate %.2fs encode %.2fs = %.0f windows/s "
              "(batched, d=%zu)\n",
              spec.name.c_str(), bundle.raw.size(), bundle.raw.channels(),
              bundle.raw.steps(), bundle.raw.num_domains(),
              bundle.raw.num_classes(), bundle.generate_seconds,
              bundle.encode_seconds, bundle.encode_windows_per_second, dim);
  std::fflush(stdout);
  return bundle;
}

/// results/<name>.csv next to the current working directory.
inline std::string results_path(const std::string& name) {
  return "results/" + name + ".csv";
}

/// CI smoke mode. Every self-timed bench registers this flag and, when set,
/// shrinks its problem sizes (scale / dim / epochs / repeats) so the whole
/// bench sweep finishes in seconds while still driving every code path. The
/// Release CI job builds all benches and runs each with --smoke, so kernel
/// regressions and bench bit-rot surface in tier-1 instead of at the next
/// manual figure run. Smoke numbers are NOT comparable to the defaults —
/// they only prove the bench still runs end to end.
inline CliParser& add_smoke_flag(CliParser& cli) {
  return cli.flag_bool("smoke", false,
                       "CI smoke run: tiny problem sizes, same code paths");
}

}  // namespace smore::bench
