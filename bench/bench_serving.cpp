// Serving-runtime throughput/latency: what micro-batching buys over
// per-request dispatch (DESIGN.md §9).
//
// Spawns an InferenceServer, drives it from `--producers` threads that each
// keep `--window` requests in flight (open-loop pipelined submission — the
// shape of real concurrent clients), and sweeps the two scheduler knobs:
//
//   batch=1/delay=0      — the per-request baseline: every request pays its
//                          own queue hop, worker wakeup, kernel setup, and
//                          result allocations;
//   batch=N/delay=D      — micro-batching: those fixed costs amortize over
//                          up to N coalesced requests served by ONE
//                          predict_batch_full pass.
//
// Reports queries/sec plus p50/p95/p99 submit→fulfill latency from the
// server's own LatencyHistogram, for the float and the packed backend, and
// the direct-batched ceiling (one predict over the whole set, no server).
// The serving PR's acceptance figure is micro-batched ≥ 5× the batch-size-1
// submit loop at 8 producers, 4096-d float.
//
// Scale note (same caveat as bench_common.hpp): that 5× is a SCHEDULING
// claim — it needs per-request dispatch overhead (worker wakeups, futex
// contention across cores, serialized single-query kernels) to dominate
// per-request compute, which holds on a multicore server (the paper's has
// 24 hardware threads) where micro-batches also fan out across `--workers`.
// This dev/CI environment exposes ONE core: every stage is compute-bound,
// the worker never sleeps under pipelined load, and the ratio is capped by
// ceiling_vs_batch1 = direct_qps / batch1_qps (~1.1-1.6× here) no matter
// the scheduler. The bench therefore reports the measured speedup AND the
// single-core ceiling so the comparison reads as a shape claim; rerun with
// real cores (e.g. --workers=4 --producers=8) for the paper-scale figure.
// Emits BENCH_serving.json for CI tracking.

#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/smore.hpp"
#include "eval/timer.hpp"
#include "hdc/hv_matrix.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "serve/server.hpp"
#include "serve/snapshot.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

/// Linearly separable encoded dataset (no encoder in the loop: this bench
/// isolates scheduling + inference, like bench_binary_inference).
HvDataset make_train(int classes, int domains, std::size_t per_cell,
                     std::size_t dim, Rng& rng) {
  std::vector<std::vector<float>> prototypes;
  for (int c = 0; c < classes; ++c) {
    std::vector<float> p(dim);
    for (auto& x : p) x = rng.bipolar();
    prototypes.push_back(std::move(p));
  }
  HvDataset data(dim);
  std::vector<float> row(dim);
  for (int d = 0; d < domains; ++d) {
    for (int c = 0; c < classes; ++c) {
      for (std::size_t i = 0; i < per_cell; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
          row[j] = prototypes[static_cast<std::size_t>(c)][j] +
                   static_cast<float>(rng.normal(0.0, 0.5));
        }
        data.add(row, c, d);
      }
    }
  }
  return data;
}

struct RunResult {
  std::string label;
  std::string backend;
  std::size_t max_batch = 0;
  std::uint32_t max_delay_us = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double mean_batch_fill = 0.0;
  LatencySummary latency;
};

/// Drive `total` requests through a server from `producers` open-loop
/// threads with `window` requests in flight each. The snapshot's own
/// backend (float or packed — it was built with or without quantization)
/// answers the queries; the server never knows which.
RunResult run_config(const char* label, std::size_t max_batch,
                     std::uint32_t max_delay_us, std::size_t workers,
                     const std::shared_ptr<const ModelSnapshot>& snap,
                     const HvMatrix& queries, std::size_t total,
                     std::size_t producers, std::size_t window,
                     const std::shared_ptr<obs::Telemetry>& hub = nullptr) {
  ServerConfig cfg;
  cfg.max_batch = max_batch;
  cfg.max_delay_us = max_delay_us;
  cfg.num_workers = workers;
  cfg.queue_capacity = std::max<std::size_t>(1024, producers * window * 2);
  cfg.telemetry = hub;  // shared across configs when --metrics-json is on
  InferenceServer server(snap, nullptr, cfg);

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      const std::size_t n = total / producers;
      std::deque<std::future<ServeResult>> inflight;
      for (std::size_t i = 0; i < n; ++i) {
        const auto row = queries.row((p * n + i) % queries.rows());
        inflight.push_back(server.submit({row.begin(), row.end()}));
        if (inflight.size() >= window) {
          inflight.front().get();
          inflight.pop_front();
        }
      }
      while (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = timer.seconds();
  server.shutdown();
  const ServerStats stats = server.stats();

  RunResult r;
  r.label = label;
  r.backend = snap->backend->name();
  r.max_batch = max_batch;
  r.max_delay_us = max_delay_us;
  r.seconds = seconds;
  r.qps = static_cast<double>(stats.completed) / seconds;
  r.mean_batch_fill = stats.mean_batch_fill;
  r.latency = stats.latency;
  std::printf("  %-28s %7zu q in %7.3f s  %9.0f q/s  fill %6.1f  "
              "p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms\n",
              label, static_cast<std::size_t>(stats.completed), seconds, r.qps,
              r.mean_batch_fill, 1e3 * r.latency.p50_seconds,
              1e3 * r.latency.p95_seconds, 1e3 * r.latency.p99_seconds);
  std::fflush(stdout);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Serving-runtime bench: micro-batched vs per-request dispatch "
      "(queries/sec, p50/p95/p99) for the float and packed backends; emits "
      "BENCH_serving.json.");
  cli.flag_int("queries", 20000, "total requests per configuration")
      .flag_int("dim", 4096, "hyperdimension")
      .flag_int("classes", 6, "classes")
      .flag_int("domains", 4, "source domains")
      .flag_int("producers", 8, "producer threads")
      .flag_int("window", 64, "in-flight requests per producer")
      .flag_int("workers", 1, "batching worker threads")
      .flag_string("out", "BENCH_serving.json", "JSON output path")
      .flag_bool("metrics-json", false,
                 "embed the telemetry metrics snapshot (cumulative over all "
                 "configs) in the output JSON")
      .flag_int("seed", 42, "data seed");
  bench::add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  auto total = static_cast<std::size_t>(cli.get_int("queries"));
  auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  auto producers = static_cast<std::size_t>(cli.get_int("producers"));
  auto window = static_cast<std::size_t>(cli.get_int("window"));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers"));
  const int classes = static_cast<int>(cli.get_int("classes"));
  const int domains = static_cast<int>(cli.get_int("domains"));
  if (cli.get_bool("smoke")) {
    total = 2000;
    dim = 512;
    window = 16;
  }
  const std::string out_path = cli.get_string("out");
  // One hub shared across every configuration: the embedded snapshot shows
  // cumulative fleet counters, the slow-span tail, and events for the whole
  // sweep (the per-config numbers stay in "configs").
  const std::shared_ptr<obs::Telemetry> hub =
      cli.get_bool("metrics-json") ? obs::Telemetry::make() : nullptr;

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const HvDataset train = make_train(classes, domains, 20, dim, rng);
  SmoreModel model(classes, dim);
  model.fit(train);
  model.calibrate_delta_star(train, 0.05);

  // Query mix: mostly in-distribution rows, some noise (exercises the OOD
  // branch of the weights loop like real traffic would).
  HvMatrix queries(1024, dim);
  for (std::size_t i = 0; i < queries.rows(); ++i) {
    if (i % 8 == 7) {
      for (std::size_t j = 0; j < dim; ++j) {
        queries.row(i)[j] = static_cast<float>(rng.normal());
      }
    } else {
      queries.set_row(i, train.row(i % train.size()));
    }
  }

  const auto float_snap = ModelSnapshot::make(model.clone(), false, 1);
  const auto packed_snap = ModelSnapshot::make(model.clone(), true, 1);

  std::printf("[bench] %zu requests/config, d=%zu, K=%d, C=%d, %zu producers "
              "x window %zu, %zu worker(s)\n",
              total, dim, domains, classes, producers, window, workers);

  // Direct-batched ceiling: the whole request set as ONE batch, no server.
  double direct_s;
  {
    WallTimer t;
    std::size_t done = 0;
    while (done < total) {
      const std::size_t n = std::min(queries.rows(), total - done);
      (void)float_snap->model->predict_batch_full(queries.view().slice(0, n));
      done += n;
    }
    direct_s = t.seconds();
  }
  std::printf("  %-28s %7zu q in %7.3f s  %9.0f q/s  (no scheduling: upper "
              "bound)\n",
              "direct predict_batch_full", total, direct_s,
              static_cast<double>(total) / direct_s);

  std::vector<RunResult> results;
  // THE baseline of the acceptance figure: a batch-size-1 submit loop —
  // every producer submits one request and waits for its future before the
  // next (window=1), and the server coalesces nothing.
  results.push_back(run_config("float submit loop (batch=1)", 1, 0, workers,
                               float_snap, queries, total, producers,
                               /*window=*/1, hub));
  results.push_back(run_config("float batch=1 pipelined", 1, 0, workers,
                               float_snap, queries, total, producers, window, hub));
  results.push_back(run_config("float batch=8 delay=100", 8, 100, workers,
                               float_snap, queries, total, producers, window, hub));
  results.push_back(run_config("float batch=32 delay=200", 32, 200, workers,
                               float_snap, queries, total, producers, window, hub));
  results.push_back(run_config("float batch=64 delay=200", 64, 200, workers,
                               float_snap, queries, total, producers, window, hub));
  results.push_back(run_config("float batch=128 delay=500", 128, 500, workers,
                               float_snap, queries, total, producers, window, hub));
  results.push_back(run_config("packed batch=1 (baseline)", 1, 0, workers,
                               packed_snap, queries, total, producers, window, hub));
  results.push_back(run_config("packed batch=64 delay=200", 64, 200, workers,
                               packed_snap, queries, total, producers, window, hub));

  // Acceptance figure: best float micro-batch vs the float submit loop.
  double best_float_qps = 0.0;
  for (const RunResult& r : results) {
    if (r.backend == "float" && r.max_batch > 1 && r.qps > best_float_qps) {
      best_float_qps = r.qps;
    }
  }
  const double baseline_qps = results.front().qps;
  const double direct_qps = static_cast<double>(total) / direct_s;
  const double speedup = best_float_qps / baseline_qps;
  const double ceiling = direct_qps / baseline_qps;
  std::printf("  micro-batched vs submit loop (float): %.2fx   "
              "single-core compute ceiling: %.2fx   (acceptance >= 5x needs "
              "multicore: see the scale note)\n",
              speedup, ceiling);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"queries_per_config\": %zu,\n"
               "  \"dim\": %zu,\n"
               "  \"classes\": %d,\n"
               "  \"domains\": %d,\n"
               "  \"producers\": %zu,\n"
               "  \"window\": %zu,\n"
               "  \"workers\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"direct_batched_queries_per_second\": %.1f,\n"
               "  \"speedup_microbatch_vs_submit_loop_float\": %.3f,\n"
               "  \"single_core_ceiling_vs_submit_loop\": %.3f,\n"
               "  \"configs\": [\n",
               total, dim, classes, domains, producers, window, workers,
               std::thread::hardware_concurrency(), direct_qps, speedup,
               ceiling);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"max_batch\": %zu, "
                 "\"max_delay_us\": %u, \"seconds\": %.6f, "
                 "\"queries_per_second\": %.1f, \"mean_batch_fill\": %.2f, "
                 "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"max_ms\": %.4f}%s\n",
                 r.backend.c_str(), r.max_batch, r.max_delay_us, r.seconds,
                 r.qps, r.mean_batch_fill, 1e3 * r.latency.p50_seconds,
                 1e3 * r.latency.p95_seconds, 1e3 * r.latency.p99_seconds,
                 1e3 * r.latency.max_seconds,
                 i + 1 < results.size() ? "," : "");
  }
  if (hub != nullptr) {
    // The snapshot is already JSON: splice it in as a raw value.
    std::fprintf(f, "  ],\n  \"telemetry\": %s\n}\n",
                 obs::snapshot_json(*hub).dump(2).c_str());
  } else {
    std::fprintf(f, "  ]\n}\n");
  }
  std::fclose(f);
  std::printf("(json: %s)\n", out_path.c_str());
  return 0;
}
