// Table 1 — "Detailed Breakdowns of Datasets": the per-domain window counts
// of DSADS / USC-HAD / PAMAP2. Our synthetic generators must reproduce the
// same domain structure; this bench prints the generated counts next to the
// paper's numbers (scaled by --scale) and writes results/table1.csv.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "eval/reporting.hpp"

namespace {

using namespace smore;
using namespace smore::bench;

struct PaperColumn {
  const char* dataset;
  std::vector<std::size_t> counts;  // per-domain, paper Table 1
};

const std::vector<PaperColumn> kPaper = {
    {"DSADS", {2280, 2280, 2280, 2280}},
    {"USC-HAD", {8945, 8754, 8534, 8867, 8274}},
    {"PAMAP2", {5636, 5591, 5806, 5660}},
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Table 1 reproduction: per-domain sample counts of the three synthetic "
      "datasets vs. the paper's breakdown.");
  cli.flag_double("scale", 0.0, "fraction of the paper's sample counts (<=0: per-dataset default)")
      .flag_bool("full", false, "generate at full paper scale (scale=1)")
      .flag_int("seed", 1, "generator seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const double scale = cli.get_bool("smoke")  ? 0.02
                       : cli.get_bool("full") ? 1.0
                                              : cli.get_double("scale");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  print_banner("Table 1: Detailed Breakdowns of Datasets (scale=" +
               fmt(scale, 3) + ")");
  CsvWriter csv(results_path("table1"),
                {"dataset", "domain", "paper_count", "paper_scaled",
                 "generated"});

  TablePrinter table({"dataset", "domain", "paper(full)", "paper(scaled)",
                      "generated", "match"});
  bool all_match = true;
  for (const auto& col : kPaper) {
    const SyntheticSpec spec = spec_by_name(col.dataset, scale, seed);
    const WindowDataset data = generate_dataset(spec);
    std::size_t total_paper = 0;
    std::size_t total_gen = 0;
    for (int d = 0; d < static_cast<int>(col.counts.size()); ++d) {
      const std::size_t paper_full = col.counts[static_cast<std::size_t>(d)];
      const std::size_t paper_scaled =
          spec.domain_counts[static_cast<std::size_t>(d)];
      const std::size_t generated = data.domain_size(d);
      const bool match = generated == paper_scaled;
      all_match &= match;
      total_paper += paper_full;
      total_gen += generated;
      table.row({col.dataset, "Domain " + std::to_string(d + 1),
                 std::to_string(paper_full), std::to_string(paper_scaled),
                 std::to_string(generated), match ? "yes" : "NO"});
      csv.row_values(col.dataset, d + 1, paper_full, paper_scaled, generated);
    }
    table.row({col.dataset, "Total", std::to_string(total_paper), "-",
               std::to_string(total_gen), "-"});
  }
  table.print();
  std::printf("\n%s (csv: %s)\n",
              all_match ? "All generated domain counts match the scaled "
                          "Table 1 targets."
                        : "MISMATCH between generated and target counts!",
              results_path("table1").c_str());
  return all_match ? 0 : 2;
}
