// Scalar-vs-batch similarity throughput: the headline numbers of the batched
// similarity engine. Times four implementations of the same
// [queries × prototypes] cosine-similarity problem on identical random data:
//   scalar       — the per-query loop the repo shipped before the engine:
//                  one three-pass cosine (nrm2(a) + nrm2(b) + dot) per
//                  (query, prototype) pair, as the descriptor bank computed;
//   scalar fused — the same loop with today's single-pass ops::cosine
//                  (isolates the norm-fusion win);
//   batch 1T     — ops::similarity_matrix with parallelism disabled
//                  (adds the register/cache-blocking win);
//   batch MT     — ops::similarity_matrix over the global ThreadPool (adds
//                  the thread-blocking win; equals 1T on single-core hosts).
// Emits BENCH_batch_similarity.json for CI tracking. Defaults match the
// engine's acceptance scenario: 10k queries × 4096 dims.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "eval/timer.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/ops.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace smore;

/// Best-of-repeats wall-clock seconds for `body`.
template <typename F>
double best_seconds(int repeats, F&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    body();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

/// The seed's cosine: three separate sweeps (two norms, then the dot) —
/// kept here as the pre-refactor baseline after ops::cosine was fused.
double three_pass_cosine(const float* a, const float* b, std::size_t n) {
  const double na = ops::nrm2(a, n);
  const double nb = ops::nrm2(b, n);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return ops::dot(a, b, n) / (na * nb);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Scalar vs batched similarity-matrix throughput (queries/sec); emits "
      "BENCH_batch_similarity.json.");
  cli.flag_int("queries", 10000, "number of query hypervectors")
      .flag_int("prototypes", 16, "number of prototype hypervectors")
      .flag_int("dim", 4096, "hyperdimension")
      .flag_int("repeats", 3, "timing repeats (best taken)")
      .flag_string("out", "BENCH_batch_similarity.json", "JSON output path")
      .flag_int("seed", 42, "data seed");
  bench::add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = cli.get_bool("smoke");
  const auto nq =
      smoke ? std::size_t{2000} : static_cast<std::size_t>(cli.get_int("queries"));
  const auto np =
      smoke ? std::size_t{8} : static_cast<std::size_t>(cli.get_int("prototypes"));
  const auto dim =
      smoke ? std::size_t{512} : static_cast<std::size_t>(cli.get_int("dim"));
  const int repeats = smoke ? 1 : static_cast<int>(cli.get_int("repeats"));
  const std::string out_path = cli.get_string("out");

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  HvMatrix queries(nq, dim);
  HvMatrix protos(np, dim);
  for (std::size_t i = 0; i < nq * dim; ++i) queries.data()[i] = rng.bipolar();
  for (std::size_t i = 0; i < np * dim; ++i) protos.data()[i] = rng.bipolar();

  std::vector<double> scalar_out(nq * np);
  std::vector<double> batch_out(nq * np);

  std::printf("[bench] %zu queries x %zu prototypes x d=%zu (%d repeats)\n",
              nq, np, dim, repeats);

  const double scalar_s = best_seconds(repeats, [&] {
    for (std::size_t q = 0; q < nq; ++q) {
      const float* qrow = queries.row(q).data();
      for (std::size_t p = 0; p < np; ++p) {
        scalar_out[q * np + p] =
            three_pass_cosine(qrow, protos.row(p).data(), dim);
      }
    }
  });

  const double fused_s = best_seconds(repeats, [&] {
    for (std::size_t q = 0; q < nq; ++q) {
      const float* qrow = queries.row(q).data();
      for (std::size_t p = 0; p < np; ++p) {
        scalar_out[q * np + p] =
            ops::cosine(qrow, protos.row(p).data(), dim);
      }
    }
  });

  const double batch_1t_s = best_seconds(repeats, [&] {
    ops::similarity_matrix(queries.data(), nq, protos.data(), np, dim,
                           batch_out.data(), nullptr, /*parallel=*/false);
  });

  const double batch_mt_s = best_seconds(repeats, [&] {
    ops::similarity_matrix(queries.data(), nq, protos.data(), np, dim,
                           batch_out.data(), nullptr, /*parallel=*/true);
  });

  // Sanity: the two paths must agree (the equivalence tests pin this too).
  double max_abs_diff = 0.0;
  for (std::size_t i = 0; i < nq * np; ++i) {
    const double d = scalar_out[i] > batch_out[i]
                         ? scalar_out[i] - batch_out[i]
                         : batch_out[i] - scalar_out[i];
    if (d > max_abs_diff) max_abs_diff = d;
  }

  const double scalar_qps = static_cast<double>(nq) / scalar_s;
  const double fused_qps = static_cast<double>(nq) / fused_s;
  const double batch_1t_qps = static_cast<double>(nq) / batch_1t_s;
  const double batch_mt_qps = static_cast<double>(nq) / batch_mt_s;
  const unsigned threads = std::thread::hardware_concurrency();

  std::printf("  scalar (seed, 3-pass): %8.3f s  %12.0f queries/s\n", scalar_s,
              scalar_qps);
  std::printf("  scalar (fused cosine): %8.3f s  %12.0f queries/s  (%.2fx)\n",
              fused_s, fused_qps, scalar_s / fused_s);
  std::printf("  batch (1T)           : %8.3f s  %12.0f queries/s  (%.2fx)\n",
              batch_1t_s, batch_1t_qps, scalar_s / batch_1t_s);
  std::printf("  batch (MT)           : %8.3f s  %12.0f queries/s  (%.2fx, %u hw threads)\n",
              batch_mt_s, batch_mt_qps, scalar_s / batch_mt_s, threads);
  std::printf("  max |scalar - batch| = %.3g\n", max_abs_diff);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"queries\": %zu,\n"
               "  \"prototypes\": %zu,\n"
               "  \"dim\": %zu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"scalar_seconds\": %.6f,\n"
               "  \"scalar_fused_seconds\": %.6f,\n"
               "  \"batch_single_thread_seconds\": %.6f,\n"
               "  \"batch_multi_thread_seconds\": %.6f,\n"
               "  \"scalar_queries_per_second\": %.1f,\n"
               "  \"scalar_fused_queries_per_second\": %.1f,\n"
               "  \"batch_single_thread_queries_per_second\": %.1f,\n"
               "  \"batch_multi_thread_queries_per_second\": %.1f,\n"
               "  \"speedup_single_thread\": %.3f,\n"
               "  \"speedup_multi_thread\": %.3f,\n"
               "  \"speedup_single_thread_vs_fused\": %.3f,\n"
               "  \"max_abs_diff\": %.3g\n"
               "}\n",
               nq, np, dim, threads, scalar_s, fused_s, batch_1t_s, batch_mt_s,
               scalar_qps, fused_qps, batch_1t_qps, batch_mt_qps,
               scalar_s / batch_1t_s, scalar_s / batch_mt_s,
               fused_s / batch_1t_s, max_abs_diff);
  std::fclose(f);
  std::printf("(json: %s)\n", out_path.c_str());
  return 0;
}
