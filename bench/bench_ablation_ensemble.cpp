// Ensemble ablation — the design choices DESIGN.md calls out for Sec 3.6 /
// Eq. 3:
//   * weight mode: clamped similarities (default) vs raw Eq.-3 similarities
//     vs softmax vs winner-take-all;
//   * OOD gating: Algorithm 1's two-path logic vs always-all-domains vs
//     always-gated;
//   * reference points: pooled BaselineHD (no ensembling) and the uniform
//     unweighted ensemble.
// Metric: LODO accuracy on the USC-HAD-like dataset averaged over folds.
// Results: results/ablation_ensemble.csv.

#include <cstdio>

#include "bench_common.hpp"
#include "core/smore.hpp"
#include "data/dataset.hpp"
#include "eval/reporting.hpp"
#include "hdc/onlinehd.hpp"

namespace {

using namespace smore;
using namespace smore::bench;

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Ensemble ablation: Eq.-3 weight modes, OOD gating variants, and "
      "non-ensemble references (LODO accuracy on USC-HAD).");
  cli.flag_double("scale", 0.05, "fraction of USC-HAD sample counts")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("hd_epochs", 15, "OnlineHD refinement epochs")
      .flag_double("delta_star", 0.65, "OOD threshold for gated variants")
      .flag_int("seed", 1, "seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bool smoke = cli.get_bool("smoke");
  const double scale = smoke ? 0.03 : cli.get_double("scale");
  const auto dim =
      smoke ? std::size_t{512} : static_cast<std::size_t>(cli.get_int("dim"));
  const double delta_star = cli.get_double("delta_star");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const EncodedBundle bundle = prepare(spec_by_name("USC-HAD", scale, seed), dim);
  const int classes = bundle.raw.num_classes();
  const int domains = bundle.raw.num_domains();

  OnlineHDConfig hd;
  hd.epochs = smoke ? 2 : static_cast<int>(cli.get_int("hd_epochs"));
  hd.seed = seed;

  struct Variant {
    std::string name;
    WeightMode mode;
    double delta;  // δ* used (1.0 forces everything OOD -> all domains)
  };
  const std::vector<Variant> variants{
      {"SMORE default (standardized softmax, Algorithm 1 gating)",
       WeightMode::kStandardizedSoftmax, delta_star},
      {"clamped similarities", WeightMode::kClampedSimilarity, delta_star},
      {"raw Eq.-3 similarities", WeightMode::kRawSimilarity, delta_star},
      {"fixed-temperature softmax", WeightMode::kSoftmax, delta_star},
      {"winner-take-all (top-1 domain)", WeightMode::kTopOne, delta_star},
      {"no gating: all domains always (delta*=1)",
       WeightMode::kStandardizedSoftmax, 1.0},
      {"hard gating: only domains above delta* (delta*=-1 disables OOD path)",
       WeightMode::kStandardizedSoftmax, -1.0},
  };

  print_banner("Ensemble ablation (LODO accuracy, USC-HAD)");
  CsvWriter csv(results_path("ablation_ensemble"),
                {"variant", "lodo_accuracy", "ood_rate"});
  TablePrinter table({"variant", "LODO acc (%)", "OOD rate (%)"});

  // Reference: pooled BaselineHD.
  {
    double acc = 0.0;
    for (int d = 0; d < domains; ++d) {
      const Split fold = lodo_split(bundle.raw, d);
      OnlineHDClassifier model(classes, dim);
      model.fit(bundle.encoded.select(fold.train), hd);
      acc += model.accuracy(bundle.encoded.select(fold.test));
    }
    acc /= domains;
    table.row({"reference: pooled BaselineHD", fmt(100 * acc), "-"});
    csv.row_values("pooled BaselineHD", acc, 0.0);
  }

  for (const Variant& v : variants) {
    double acc = 0.0;
    double ood = 0.0;
    for (int d = 0; d < domains; ++d) {
      const Split fold = lodo_split(bundle.raw, d);
      SmoreConfig sc;
      sc.weight_mode = v.mode;
      sc.delta_star = v.delta;
      sc.domain_model = hd;
      SmoreModel model(classes, dim, sc);
      model.fit(bundle.encoded.select(fold.train));
      acc += model.accuracy(bundle.encoded.select(fold.test));
      ood += model.ood_rate(bundle.encoded.select(fold.test));
    }
    acc /= domains;
    ood /= domains;
    table.row({v.name, fmt(100 * acc), fmt(100 * ood)});
    csv.row_values(v.name, acc, ood);
    std::printf("  %s done\n", v.name.c_str());
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n(csv: %s)\n", results_path("ablation_ensemble").c_str());
  return 0;
}
