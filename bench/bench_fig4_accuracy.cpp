// Figure 4 — "Comparing LODO Accuracy of SMORE and CNN-based Domain
// Adaptation Algorithms": per-held-out-domain LODO accuracy on DSADS,
// USC-HAD and PAMAP2 for TENT, MDANs, BaselineHD, DOMINO and SMORE, plus the
// Sec 4.2 headline aggregates:
//   * SMORE vs MDANs        (paper: +1.98 pp average)
//   * SMORE vs BaselineHD   (paper: +20.25 pp)
//   * SMORE vs DOMINO       (paper: +4.56 pp)
//   * SMORE ≈ TENT          (paper: "comparable")
// Absolute numbers differ (synthetic data, reduced scale); the bench checks
// the *ordering* the paper reports. Results: results/fig4_accuracy.csv.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "eval/experiment.hpp"
#include "eval/reporting.hpp"

namespace {

using namespace smore;
using namespace smore::bench;

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Figure 4 reproduction: LODO accuracy of all five algorithms on the "
      "three datasets, per held-out domain.");
  cli.flag_double("scale", 0.0, "fraction of the paper's sample counts (<=0: per-dataset default)")
      .flag_bool("full", false, "paper scale (scale=1, dim=8192)")
      .flag_int("dim", 2048, "hyperdimension d")
      .flag_int("hd_epochs", 15, "OnlineHD refinement epochs")
      .flag_int("cnn_epochs", 5, "CNN training epochs")
      .flag_double("delta_star", 0.65, "SMORE OOD threshold")
      .flag_string("datasets", "DSADS,USC-HAD,PAMAP2",
                   "comma-separated dataset list")
      .flag_int("seed", 1, "seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bool full = cli.get_bool("full");
  const bool smoke = cli.get_bool("smoke");
  const double scale = smoke ? 0.03 : full ? 1.0 : cli.get_double("scale");
  const std::size_t dim =
      smoke ? 512 : full ? 8192 : static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  SuiteConfig cfg;
  cfg.dim = dim;
  cfg.hd_epochs = smoke ? 2 : static_cast<int>(cli.get_int("hd_epochs"));
  cfg.cnn_epochs = smoke ? 1 : static_cast<int>(cli.get_int("cnn_epochs"));
  cfg.delta_star = cli.get_double("delta_star");
  cfg.seed = seed;

  std::vector<std::string> names;
  {
    std::string list = smoke ? "USC-HAD" : cli.get_string("datasets");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const std::size_t comma = list.find(',', pos);
      names.push_back(list.substr(
          pos, comma == std::string::npos ? comma : comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  CsvWriter csv(results_path("fig4_accuracy"),
                {"dataset", "held_out_domain", "algorithm", "accuracy",
                 "ood_rate"});

  // average accuracy per algorithm across every (dataset, domain) cell
  std::map<Algo, double> grand_sum;
  std::size_t cells = 0;

  for (const auto& name : names) {
    const SyntheticSpec spec = spec_by_name(name, scale, seed);
    const EncodedBundle bundle = prepare(spec, dim);
    cfg.encode_seconds_per_sample = bundle.encode_seconds_per_sample;

    const int domains = bundle.raw.num_domains();
    print_banner("Figure 4: " + name + " LODO accuracy (%)");
    std::vector<std::string> header{"algorithm"};
    for (int d = 0; d < domains; ++d) {
      header.push_back("Domain " + std::to_string(d + 1));
    }
    header.push_back("Average");
    TablePrinter table(header);

    for (const Algo algo : all_algos()) {
      std::vector<std::string> row{algo_name(algo)};
      double sum = 0.0;
      for (int d = 0; d < domains; ++d) {
        const Split fold = lodo_split(bundle.raw, d);
        const AlgoRunResult r =
            run_algorithm(algo, bundle.raw, bundle.encoded, fold, cfg);
        row.push_back(fmt(100 * r.accuracy));
        csv.row_values(name, d + 1, algo_name(algo), r.accuracy, r.ood_rate);
        sum += r.accuracy;
        grand_sum[algo] += r.accuracy;
      }
      row.push_back(fmt(100 * sum / domains));
      table.row(std::move(row));
      std::printf("  %s done\n", algo_name(algo));
      std::fflush(stdout);
    }
    cells += static_cast<std::size_t>(domains);
    table.print();
  }

  // ---- Sec 4.2 headline aggregates ----
  print_banner("Sec 4.2 headline: average accuracy gaps (percentage points)");
  auto avg = [&](Algo a) {
    return 100.0 * grand_sum[a] / static_cast<double>(cells);
  };
  TablePrinter headline(
      {"comparison", "paper (pp)", "measured (pp)", "shape holds?"});
  const double d_mdan = avg(Algo::kSmore) - avg(Algo::kMdans);
  const double d_base = avg(Algo::kSmore) - avg(Algo::kBaselineHd);
  const double d_domino = avg(Algo::kSmore) - avg(Algo::kDomino);
  const double d_tent = avg(Algo::kSmore) - avg(Algo::kTent);
  headline.row({"SMORE - MDANs", "+1.98", fmt(d_mdan),
                d_mdan > 0 ? "yes" : "NO"});
  headline.row({"SMORE - BaselineHD", "+20.25", fmt(d_base),
                d_base > 0 ? "yes" : "NO"});
  headline.row({"SMORE - DOMINO", "+4.56", fmt(d_domino),
                d_domino > 0 ? "yes" : "NO"});
  headline.row({"SMORE - TENT", "~0 (comparable)", fmt(d_tent),
                std::abs(d_tent) < 5.0 ? "yes" : "NO"});
  headline.print();
  std::printf("\nAverages: TENT %.2f | MDANs %.2f | BaselineHD %.2f | DOMINO "
              "%.2f | SMORE %.2f (csv: %s)\n",
              avg(Algo::kTent), avg(Algo::kMdans), avg(Algo::kBaselineHd),
              avg(Algo::kDomino), avg(Algo::kSmore),
              results_path("fig4_accuracy").c_str());
  return 0;
}
