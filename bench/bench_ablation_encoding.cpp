// Encoding ablation — the design choices DESIGN.md calls out for Sec 3.3:
//   * base policy: fixed per-sensor anchors (default) vs the paper-literal
//     per-window random anchors;
//   * anchor geometry: antipodal (H_max = -H_min, default) vs independent
//     random anchors (paper-literal);
//   * level policy: thresholded quantization (default) vs paper-literal
//     continuous interpolation (provably time-reversal-invariant);
//   * n-gram size and temporal dilation.
// Metric: BaselineHD LODO accuracy on the USC-HAD-like dataset — the
// encoder's job is to preserve class structure under shift; this isolates it
// from SMORE's ensembling. Results: results/ablation_encoding.csv.

#include <cstdio>

#include "bench_common.hpp"
#include "data/dataset.hpp"
#include "eval/reporting.hpp"
#include "hdc/onlinehd.hpp"

namespace {

using namespace smore;
using namespace smore::bench;

double lodo_accuracy(const WindowDataset& raw, const EncoderConfig& ec,
                     int epochs, std::uint64_t seed) {
  const MultiSensorEncoder encoder(ec);
  const HvDataset encoded = encoder.encode_dataset(raw);
  OnlineHDConfig hd;
  hd.epochs = epochs;
  hd.seed = seed;
  double acc = 0.0;
  const int domains = raw.num_domains();
  for (int d = 0; d < domains; ++d) {
    const Split fold = lodo_split(raw, d);
    const HvDataset train = encoded.select(fold.train);
    const HvDataset test = encoded.select(fold.test);
    OnlineHDClassifier model(raw.num_classes(), ec.dim);
    model.fit(train, hd);
    acc += model.accuracy(test);
  }
  return acc / domains;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "Encoding ablation: base policy, anchor geometry, level policy, n-gram "
      "size, temporal dilation (BaselineHD LODO accuracy on USC-HAD).");
  cli.flag_double("scale", 0.03, "fraction of USC-HAD sample counts")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("hd_epochs", 15, "OnlineHD refinement epochs")
      .flag_int("seed", 1, "seed");
  add_smoke_flag(cli);
  if (!cli.parse(argc, argv)) return 1;
  const bool smoke = cli.get_bool("smoke");
  const double scale = smoke ? 0.02 : cli.get_double("scale");
  const auto dim =
      smoke ? std::size_t{512} : static_cast<std::size_t>(cli.get_int("dim"));
  const int epochs = smoke ? 2 : static_cast<int>(cli.get_int("hd_epochs"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const SyntheticSpec spec = spec_by_name("USC-HAD", scale, seed);
  const WindowDataset raw = generate_dataset(spec);
  std::printf("[prepare] USC-HAD N=%zu\n", raw.size());

  struct Variant {
    std::string name;
    EncoderConfig config;
  };
  std::vector<Variant> variants;
  EncoderConfig base;
  base.dim = dim;

  variants.push_back({"default (fixed antipodal anchors, Q=32, auto dilation)",
                      base});
  {
    EncoderConfig c = base;
    c.per_window_random_base = true;
    variants.push_back({"paper-literal per-window random anchors", c});
  }
  {
    EncoderConfig c = base;
    c.antipodal_base = false;
    variants.push_back({"independent (non-antipodal) anchors", c});
  }
  {
    EncoderConfig c = base;
    c.quantization_levels = 0;
    // Antipodal anchors would make every interpolated level parallel to the
    // base (degenerate); the paper-literal mode pairs interpolation with
    // independent anchors.
    c.antipodal_base = false;
    variants.push_back({"paper-literal continuous interpolation (Q=0)", c});
  }
  {
    EncoderConfig c = base;
    c.ngram_dilations = {3, 6, 12};
    variants.push_back({"multi-scale dilation {3,6,12}", c});
  }
  for (const std::size_t q : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    EncoderConfig c = base;
    c.quantization_levels = q;
    variants.push_back({"quantization Q=" + std::to_string(q), c});
  }
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    EncoderConfig c = base;
    c.ngram = n;
    variants.push_back({"ngram n=" + std::to_string(n), c});
  }
  for (const std::size_t dil : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    EncoderConfig c = base;
    c.ngram_dilation = dil;
    variants.push_back({"dilation δ=" + std::to_string(dil), c});
  }

  print_banner("Encoding ablation (BaselineHD LODO accuracy, USC-HAD)");
  CsvWriter csv(results_path("ablation_encoding"),
                {"variant", "lodo_accuracy"});
  TablePrinter table({"variant", "LODO acc (%)"});
  for (const Variant& v : variants) {
    const double acc = lodo_accuracy(raw, v.config, epochs, seed);
    table.row({v.name, fmt(100 * acc)});
    csv.row_values(v.name, acc);
    std::printf("  %s done\n", v.name.c_str());
    std::fflush(stdout);
  }
  table.print();
  std::printf("\n(csv: %s)\n", results_path("ablation_encoding").c_str());
  return 0;
}
