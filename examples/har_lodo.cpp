// Human-activity-recognition LODO study: the paper's evaluation protocol on
// one dataset, end to end, with per-domain detail — the workload its
// introduction motivates (wearable HAR under subject shift).
//
// For the chosen dataset this example runs every leave-one-domain-out fold
// through the Pipeline facade (windows in, verdicts out), compares SMORE
// against a pooled BaselineHD-style model trained on the *same* shared
// encoder, and prints per-class F1 for the hardest fold.
//
//   ./build/example_har_lodo --dataset=USC-HAD --scale=0.03 --dim=2048

#include <cstdio>
#include <string>

#include "core/pipeline.hpp"
#include "eval/metrics.hpp"
#include "eval/reporting.hpp"
#include "common.hpp"
#include "hdc/onlinehd.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace smore;

  CliParser cli("LODO human-activity-recognition study on one dataset.");
  cli.flag_string("dataset", "USC-HAD", "DSADS | USC-HAD | PAMAP2")
      .flag_double("scale", 0.05, "fraction of the paper's sample counts")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("epochs", 15, "OnlineHD refinement epochs")
      .flag_double("delta_star", 0.65, "SMORE OOD threshold")
      .flag_int("seed", 1, "seed");
  if (!cli.parse(argc, argv)) return 1;

  const std::string name = cli.get_string("dataset");
  const double scale = cli.get_double("scale");
  const auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  SyntheticSpec spec = name == "DSADS"    ? dsads_spec(scale, seed)
                       : name == "PAMAP2" ? pamap2_spec(scale, seed)
                                          : uschad_spec(scale, seed);
  const WindowDataset raw = generate_dataset(spec);
  std::printf("%s: %zu windows, %d activities, %d domains, %zu channels\n",
              raw.name().c_str(), raw.size(), raw.num_classes(),
              raw.num_domains(), raw.channels());

  // ONE encoder and ONE encoding pass, shared by every fold's pipeline and
  // the pooled baseline: the dataset is encoded once and each fold selects
  // its rows (the splits are index-based for exactly this reason).
  const auto encoder = examples::make_encoder(dim, seed);
  const HvDataset encoded = encoder->encode_dataset(raw);

  OnlineHDConfig hd;
  hd.epochs = static_cast<int>(cli.get_int("epochs"));
  hd.seed = seed;
  SmoreConfig sc;
  sc.delta_star = cli.get_double("delta_star");
  sc.domain_model = hd;

  TablePrinter table({"held-out", "pooled acc (%)", "SMORE acc (%)",
                      "SMORE OOD rate (%)", "macro-F1 (%)"});
  double worst_acc = 2.0;
  int worst_domain = 0;
  ConfusionMatrix worst_cm(raw.num_classes());

  for (int d = 0; d < raw.num_domains(); ++d) {
    const Split fold = lodo_split(raw, d);
    const HvDataset train_hv = encoded.select(fold.train);
    const HvDataset test_hv = encoded.select(fold.test);

    // SMORE through the deployable facade, fit via the shared-encoding
    // escape hatch (fit_encoded) so the fold reuses the one encoding pass.
    Pipeline pipeline(encoder, raw.num_classes(), sc);
    pipeline.fit_encoded(train_hv);

    // The pooled BaselineHD-style model gets the identical encoding.
    OnlineHDClassifier pooled(raw.num_classes(), dim);
    pooled.fit(train_hv, hd);

    ConfusionMatrix cm(raw.num_classes());
    cm.record_all(test_hv.labels(),
                  pipeline.model().predict_batch(test_hv.view()));
    const double acc = cm.accuracy();
    const SmoreEvaluation eval = pipeline.model().evaluate(test_hv);
    table.row({"Domain " + std::to_string(d + 1),
               fmt(100 * pooled.accuracy(test_hv)), fmt(100 * acc),
               fmt(100 * eval.ood_rate), fmt(100 * cm.macro_f1())});
    if (acc < worst_acc) {
      worst_acc = acc;
      worst_domain = d;
      worst_cm = cm;
    }
  }
  print_banner(name + " LODO results");
  table.print();

  print_banner("Per-class F1 on the hardest fold (domain " +
               std::to_string(worst_domain + 1) + ")");
  TablePrinter f1({"activity", "precision (%)", "recall (%)", "F1 (%)"});
  for (int c = 0; c < raw.num_classes(); ++c) {
    f1.row({"activity " + std::to_string(c), fmt(100 * worst_cm.precision(c)),
            fmt(100 * worst_cm.recall(c)), fmt(100 * worst_cm.f1(c))});
  }
  f1.print();
  return 0;
}
