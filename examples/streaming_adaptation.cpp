// Streaming adaptation: SMORE as it would run on an IoT gateway — a
// deployable Pipeline served through the serving runtime (src/serve/,
// DESIGN.md §9–§10).
//
// A Pipeline trained on K source subjects boots the server (one call: the
// snapshot takes the pipeline's model, calibration, and encoder), then
// serves a live stream of windows submitted by concurrent clients.
// Mid-stream, the subject wearing the sensors changes to someone the model
// has never seen (the Fig. 1a scenario). The example shows:
//   * per-request OOD verdicts flipping when the unseen subject appears;
//   * the online-adaptation worker enrolling the new subject CONCURRENTLY
//     with live traffic: OOD windows drain into its side buffer, it clones
//     the live model, absorbs them as a new domain (Sec 3.6 "Model Update"),
//     and publishes a new snapshot — no request is ever blocked by it;
//   * the OOD rate dropping once the published generation knows the new
//     domain, without the serving path ever taking a lock;
//   * the domain LIFECYCLE (DESIGN.md §13) keeping the bank bounded as more
//     strangers appear, and recurring drift — a previously enrolled subject
//     coming back — being served by its existing domain instead of enrolling
//     a duplicate.
//
//   ./build/example_streaming_adaptation

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "data/windowing.hpp"
#include "common.hpp"
#include "serve/server.hpp"

int main() {
  using namespace smore;

  // Training population: subjects 0-3 (four domains). Subject 4 is unseen.
  const SyntheticSpec spec =
      examples::demo_spec("stream", /*activities=*/6, /*subjects=*/5,
                          /*channels=*/4, /*window_steps=*/64,
                          /*windows_per_subject=*/150, /*domain_shift=*/1.5,
                          /*seed=*/7);
  const WindowDataset all = generate_dataset(spec);

  // Fit the deployable pipeline on domains 0-3 only, then calibrate the OOD
  // threshold for a 5% in-distribution false-positive budget (the
  // deployment-grade way to pick δ* instead of hand-tuning).
  const auto fold = examples::lodo_windows(all, /*held_out_domain=*/4);
  Pipeline pipeline(examples::make_encoder(/*dim=*/2048), all.num_classes());
  pipeline.fit(fold.train);
  const double delta = pipeline.calibrate(fold.train, 0.05);
  std::printf("deployed pipeline: %zu source domains, %d activities, "
              "calibrated delta* = %.3f (5%% FP budget)\n",
              pipeline.num_domains(), all.num_classes(), delta);

  // Boot the serving runtime straight from the pipeline (snapshot v1, the
  // pipeline's encoder shared into the server) with online adaptation
  // enabled: once 64 OOD windows accumulate, the adaptation worker enrolls
  // them as a new domain and publishes the next generation.
  ServerConfig cfg;
  cfg.max_batch = 32;
  cfg.max_delay_us = 200;
  cfg.adaptation = true;
  cfg.adapt_min_batch = 64;
  cfg.adapt_poll_ms = 1;
  // Bounded lifecycle (DESIGN.md §13): enrollment may never grow the bank
  // past the cap, the source domains are eviction-protected, and recurring
  // drift merges into its old domain instead of enrolling a duplicate.
  cfg.lifecycle = true;
  cfg.lifecycle_config.max_domains = pipeline.num_domains() + 2;
  cfg.lifecycle_config.protected_domains = pipeline.num_domains();
  InferenceServer server(pipeline, cfg);

  // Phase 1: stream windows from a known subject (domain 1).
  const auto known = examples::lodo_windows(all, 1).test;
  // Phase 2: an unseen subject from the same population (the held-out
  // domain) — similar to the training continuum, so the *adaptive test-time
  // model* should absorb it without tripping the detector.
  const WindowDataset& unseen_similar = fold.test;
  // Phase 3: a subject from outside the studied population entirely —
  // identical activities, but a far more extreme personal transform. This is
  // what the OOD detector exists for.
  SyntheticSpec outsider_spec = spec;
  outsider_spec.domain_shift = 6.0;  // way beyond the training population
  const WindowDataset outsider =
      examples::lodo_windows(generate_dataset(outsider_spec), 4).test;

  // Each phase streams `n` single-window requests through the server — raw
  // windows, encoded inside the micro-batches by the pipeline's encoder
  // (the per-request futures carry label + OOD verdict + snapshot version).
  auto run_phase = [&](const char* label, const WindowDataset& phase,
                       std::size_t first, std::size_t n) {
    const std::size_t end = std::min(first + n, phase.size());
    if (first >= end) return;
    std::vector<std::future<ServeResult>> futures;
    futures.reserve(end - first);
    for (std::size_t i = first; i < end; ++i) {
      futures.push_back(server.submit(phase[i]));
    }
    std::size_t correct = 0;
    std::size_t flagged = 0;
    std::uint64_t version = 0;
    for (std::size_t i = first; i < end; ++i) {
      const ServeResult r = futures[i - first].get();
      correct += r.label == phase[i].label() ? 1 : 0;
      flagged += r.is_ood ? 1 : 0;
      version = std::max(version, r.snapshot_version);
    }
    const auto total = static_cast<double>(end - first);
    std::printf("%-34s accuracy %5.1f%%  OOD flagged %5.1f%%  "
                "(snapshot v%llu, bank K=%zu)\n",
                label, 100.0 * static_cast<double>(correct) / total,
                100.0 * static_cast<double>(flagged) / total,
                static_cast<unsigned long long>(version),
                server.snapshot()->model->num_domains());
  };

  const std::size_t probe = 120;
  std::printf("\n--- live stream (micro-batched serving) ---\n");
  run_phase("known subject (domain 1):", known, 0, probe);
  run_phase("unseen subject, same population:", unseen_similar, 0, probe);
  run_phase("OUT-OF-POPULATION subject:", outsider, 0, probe);

  // The adaptation worker saw >= adapt_min_batch OOD windows during phase 3
  // and is enrolling them in the background while the server keeps serving.
  // Wait (bounded) for the next generation to be published.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().adaptation_rounds == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const ServerStats mid = server.stats();
  std::printf("\nadaptation worker: %llu round(s), %llu OOD windows enrolled "
              "as domain(s) beyond the source %zu -> serving snapshot v%llu "
              "(%zu domains)\n",
              static_cast<unsigned long long>(mid.adaptation_rounds),
              static_cast<unsigned long long>(mid.adaptation_absorbed),
              pipeline.num_domains(),
              static_cast<unsigned long long>(mid.snapshot_version),
              server.snapshot()->model->num_domains());

  // Stream MORE windows from the same outsider: the published generation
  // now recognizes the enrolled domain, so the OOD rate collapses (and the
  // stream keeps flowing during the whole swap — zero requests dropped).
  run_phase("outsider after enrollment:", outsider, probe, probe);

  // Phase 4: recurring drift. A SECOND stranger appears (another extreme
  // personal transform) and is enrolled; then the FIRST outsider returns.
  // The recurring traffic lands in its previously enrolled domain — served
  // in-distribution, no duplicate enrollment — so the bank size printed for
  // the last phase matches the one before the return, and stays under the
  // lifecycle cap throughout.
  SyntheticSpec outsider2_spec = spec;
  outsider2_spec.domain_shift = 6.0;
  outsider2_spec.seed = spec.seed + 101;
  const WindowDataset outsider2 =
      examples::lodo_windows(generate_dataset(outsider2_spec), 4).test;
  run_phase("a SECOND stranger:", outsider2, 0, probe);
  const auto recurring_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().adaptation_rounds == mid.adaptation_rounds &&
         std::chrono::steady_clock::now() < recurring_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::size_t bank_before_return =
      server.snapshot()->model->num_domains();
  // Recurring drift re-streams the outsider's windows — the same subject
  // coming back IS the same data distribution returning.
  run_phase("first outsider RETURNS:", outsider, 0, probe);
  const std::size_t bank_after_return =
      server.snapshot()->model->num_domains();
  std::printf("\nrecurring drift: bank %zu -> %zu domain(s) across the "
              "return (%s duplicate enrollment), cap %zu\n",
              bank_before_return, bank_after_return,
              bank_after_return == bank_before_return ? "no" : "UNEXPECTED",
              cfg.lifecycle_config.max_domains);

  const ServerStats stats = server.stats();
  std::printf("\nserver: %llu requests in %llu batches (mean fill %.1f), "
              "p50 %.2f ms, p99 %.2f ms, %llu rejected\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.batches),
              stats.mean_batch_fill, 1e3 * stats.latency.p50_seconds,
              1e3 * stats.latency.p99_seconds,
              static_cast<unsigned long long>(stats.rejected));
  std::printf("lifecycle: %llu round(s), %llu absorbed, %llu merged, "
              "%llu evicted, %llu dropped (%llu side-buffer overflow)\n",
              static_cast<unsigned long long>(stats.adaptation_rounds),
              static_cast<unsigned long long>(stats.adaptation_absorbed),
              static_cast<unsigned long long>(stats.adaptation_merged),
              static_cast<unsigned long long>(stats.adaptation_evicted),
              static_cast<unsigned long long>(stats.adaptation_dropped),
              static_cast<unsigned long long>(stats.adaptation_overflow));
  return 0;
}
