// Streaming adaptation: SMORE as it would run on an IoT gateway.
//
// A deployed model trained on K source subjects watches a live stream of
// windows. Mid-stream, the subject wearing the sensors changes to someone
// the model has never seen (the Fig. 1a scenario). The example shows:
//   * per-window OOD verdicts flipping when the unseen subject appears;
//   * the test-time ensemble weights shifting (Sec 3.6);
//   * accuracy staying up thanks to adaptive test-time modeling, and the
//     descriptor bank being extended online (absorb) once the new subject is
//     "enrolled", turning them into an in-distribution domain.
//
//   ./build/examples/streaming_adaptation

#include <algorithm>
#include <cstdio>
#include <span>
#include <vector>

#include "core/smore.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "data/windowing.hpp"
#include "hdc/encoder.hpp"

int main() {
  using namespace smore;

  // Training population: subjects 0-3 (four domains). Subject 4 is unseen.
  SyntheticSpec spec;
  spec.name = "stream";
  spec.activities = 6;
  spec.subjects = 5;
  spec.subject_to_domain = {0, 1, 2, 3, 4};
  spec.channels = 4;
  spec.window_steps = 64;
  spec.sample_rate_hz = 50.0;
  spec.domain_counts = {150, 150, 150, 150, 150};
  spec.domain_shift = 1.5;
  spec.seed = 7;
  const WindowDataset all = generate_dataset(spec);

  EncoderConfig ec;
  ec.dim = 2048;
  const MultiSensorEncoder encoder(ec);
  const HvDataset encoded = encoder.encode_dataset(all);

  // Train on domains 0-3 only, then calibrate the OOD threshold for a 5%
  // in-distribution false-positive budget (the deployment-grade way to pick
  // δ* instead of hand-tuning).
  const Split fold = lodo_split(all, 4);
  const HvDataset train = encoded.select(fold.train);
  SmoreModel model(all.num_classes(), ec.dim);
  model.fit(train);
  const double delta = model.calibrate_delta_star(train, 0.05);
  std::printf("deployed model: %zu source domains, %d activities, "
              "calibrated delta* = %.3f (5%% FP budget)\n",
              model.num_domains(), all.num_classes(), delta);

  // Phase 1: stream windows from a known subject (domain 1).
  const auto known = encoded.select(encoded.indices_of_domain(1));
  // Phase 2: an unseen subject from the same population (the held-out
  // domain) — similar to the training continuum, so the *adaptive test-time
  // model* should absorb it without tripping the detector.
  const auto unseen_similar = encoded.select(fold.test);
  // Phase 3: a subject from outside the studied population entirely —
  // identical activities, but a far more extreme personal transform. This is
  // what the OOD detector exists for.
  SyntheticSpec outsider_spec = spec;
  outsider_spec.domain_shift = 6.0;  // way beyond the training population
  const WindowDataset outsider_raw = generate_dataset(outsider_spec);
  WindowDataset outsider_windows("outsider", spec.channels, spec.window_steps);
  for (std::size_t i = 0; i < outsider_raw.size(); ++i) {
    if (outsider_raw[i].domain() == 4) outsider_windows.add(outsider_raw[i]);
  }
  const HvDataset outsider = encoder.encode_dataset(outsider_windows);

  // Each phase is one adaptation batch through the batched engine: evaluate()
  // computes accuracy and OOD rate in a single matrix-kernel pass (per-window
  // predict_detail loops are for introspection, not serving).
  auto run_phase = [&](const char* label, const HvDataset& phase,
                       std::size_t n) {
    std::vector<std::size_t> head(std::min(n, phase.size()));
    for (std::size_t i = 0; i < head.size(); ++i) head[i] = i;
    const SmoreEvaluation ev = model.evaluate(phase.select(head));
    std::printf("%-34s accuracy %5.1f%%  OOD flagged %5.1f%%\n", label,
                100.0 * ev.accuracy, 100.0 * ev.ood_rate);
  };

  const std::size_t probe = 120;
  std::printf("\n--- live stream ---\n");
  run_phase("known subject (domain 1):", known, probe);
  run_phase("unseen subject, same population:", unseen_similar, probe);
  run_phase("OUT-OF-POPULATION subject:", outsider, probe);

  // Enrollment: absorb the outsider's windows into a fresh descriptor so the
  // detector learns the new domain online (labels are never needed). The
  // enrollment batch is bundled in one absorb_batch pass, and the follow-up
  // windows are scored through the batched similarity engine.
  DomainDescriptorBank extended = model.descriptors();
  const std::size_t enroll = std::min<std::size_t>(probe, outsider.size());
  extended.absorb_batch(outsider.view().slice(0, enroll), /*domain_id=*/99);
  std::size_t still_ood = 0;
  std::size_t scored = 0;
  const OodDetector detector(model.config().delta_star);
  const std::size_t score_end = std::min<std::size_t>(2 * probe, outsider.size());
  if (score_end > enroll) {
    const HvView rest = outsider.view().slice(enroll, score_end - enroll);
    const std::vector<double> sims = extended.similarities_batch(rest);
    const std::size_t k = extended.size();
    for (std::size_t i = 0; i < rest.rows; ++i) {
      const std::span<const double> row(sims.data() + i * k, k);
      still_ood += detector.evaluate(row).is_ood ? 1 : 0;
      ++scored;
    }
  }
  std::printf("after enrolling %zu unlabeled outsider windows: OOD flagged "
              "%5.1f%% (new domain recognized)\n",
              probe,
              100.0 * static_cast<double>(still_ood) /
                  static_cast<double>(scored));
  return 0;
}
