// Edge deployment sizing: what it costs to run SMORE on constrained devices.
//
// For a PAMAP2-like workload this example fits one deployable Pipeline
// (encoder + model + calibration + packed backend), then measures per-window
// encode and inference latency on this host through BOTH serving
// representations behind the InferenceBackend interface, sizes both models,
// and projects latency/energy onto the paper's two edge platforms through
// the documented device model (DESIGN.md §3). It is the "can I ship this?"
// calculation an embedded engineer would run first, including the "can I
// ship it to an MCU?" variant (DESIGN.md §8).
//
//   ./build/example_edge_deployment --dim=2048 --scale=0.02

#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <vector>

#include "core/pipeline.hpp"
#include "eval/edge_model.hpp"
#include "eval/reporting.hpp"
#include "eval/timer.hpp"
#include "common.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace smore;

  CliParser cli("Edge deployment sizing for SMORE on a PAMAP2-like workload.");
  cli.flag_double("scale", 0.02, "dataset scale")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_int("probe", 200, "windows to time")
      .flag_int("seed", 1, "seed");
  if (!cli.parse(argc, argv)) return 1;
  const auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const SyntheticSpec spec = pamap2_spec(cli.get_double("scale"), seed);
  const WindowDataset raw = generate_dataset(spec);
  const auto fold = examples::lodo_windows(raw, 0);

  // One deployable pipeline: fit + quantize (the artifact an edge gateway
  // would load).
  Pipeline pipeline(examples::make_encoder(dim, seed), raw.num_classes());
  pipeline.fit(fold.train);
  pipeline.quantize();

  // --- model footprint: float backend vs packed binary backend ---
  const SmoreModel& model = pipeline.model();
  const BinarySmoreModel& packed = *pipeline.packed();
  const std::size_t class_bytes = model.num_domains() *
                                  static_cast<std::size_t>(raw.num_classes()) *
                                  dim * sizeof(float);
  const std::size_t desc_bytes = model.num_domains() * dim * sizeof(float);
  print_banner("Model footprint");
  std::printf("domains %zu x classes %d x d %zu  -> class vectors %8.1f KiB\n",
              model.num_domains(), raw.num_classes(), dim,
              static_cast<double>(class_bytes) / 1024.0);
  std::printf("domain descriptors                -> %8.1f KiB\n",
              static_cast<double>(desc_bytes) / 1024.0);
  std::printf("float total                       -> %8.1f KiB (fits an MCU "
              "with external RAM; no weights, no backprop state)\n",
              static_cast<double>(model.footprint_bytes()) / 1024.0);
  std::printf("packed binary total               -> %8.1f KiB (%.0fx smaller: "
              "class banks %.1f KiB + descriptors %.1f KiB, on-chip SRAM "
              "territory)\n",
              static_cast<double>(packed.footprint_bytes()) / 1024.0,
              static_cast<double>(model.footprint_bytes()) /
                  static_cast<double>(packed.footprint_bytes()),
              static_cast<double>(packed.class_bank_bits().bytes()) / 1024.0,
              static_cast<double>(packed.descriptor_bits().bytes()) / 1024.0);

  // --- host timing ---
  // The probe runs through the batched engine end to end (encode_batch +
  // predict through each InferenceBackend): on-device inference services
  // windows in batches, and the reported per-window figures are the
  // amortized batch latency.
  const auto probe = std::min<std::size_t>(
      static_cast<std::size_t>(cli.get_int("probe")), fold.test.size());
  WindowDataset probe_windows("probe", raw.channels(), raw.steps());
  for (std::size_t i = 0; i < probe; ++i) probe_windows.add(fold.test[i]);

  HvMatrix probe_hv;
  WallTimer t1;
  pipeline.encoder().encode_batch(probe_windows, probe_hv);
  const double encode_s = t1.seconds();

  // Both serving representations behind the one interface the server uses
  // (the snapshot picks the backend: packed iff it carries a packed model).
  const auto float_snap =
      ModelSnapshot::make(pipeline, /*version=*/1, /*prefer_packed=*/false);
  const auto packed_snap =
      ModelSnapshot::make(pipeline, /*version=*/1, /*prefer_packed=*/true);
  struct Timed {
    const InferenceBackend* backend;
    std::vector<int> labels;
    double seconds = 0.0;
  };
  Timed variants[] = {{float_snap->backend.get(), {}, 0.0},
                      {packed_snap->backend.get(), {}, 0.0}};
  for (Timed& v : variants) {
    WallTimer t;
    v.labels = v.backend->predict_batch_full(probe_hv.view()).labels;
    v.seconds = t.seconds();
  }
  const double infer_s = variants[0].seconds;
  const double infer_packed_s = variants[1].seconds;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < probe; ++i) {
    agree += variants[0].labels[i] == variants[1].labels[i] ? 1 : 0;
  }
  const double encode_ms = 1e3 * encode_s / static_cast<double>(probe);
  const double infer_ms = 1e3 * infer_s / static_cast<double>(probe);
  const double infer_packed_ms =
      1e3 * infer_packed_s / static_cast<double>(probe);
  print_banner("Measured per-window latency on this host (batched engine)");
  std::printf("encode  %7.3f ms   classify %7.3f ms (float) / %7.3f ms "
              "(packed, %.1fx)   total %7.3f ms   (%zu-window probe, %.0f "
              "windows/s end-to-end float)\n",
              encode_ms, infer_ms, infer_packed_ms,
              infer_packed_s > 0.0 ? infer_s / infer_packed_s : 0.0,
              encode_ms + infer_ms, probe,
              static_cast<double>(probe) / (encode_s + infer_s));
  std::printf("float/packed label agreement on the probe: %.1f%% (%zu/%zu)\n",
              100.0 * static_cast<double>(agree) / static_cast<double>(probe),
              agree, probe);

  // --- serving-runtime tail latency on this host ---
  // A gateway doesn't run one batch: it serves a request stream. Drive the
  // same probe through the micro-batching server for both representations —
  // the backend is chosen by the snapshot (packed iff quantized), never by
  // the server — and report the submit→fulfill percentiles a deployment
  // would put in its SLO (util/latency.hpp histogram, not min/mean).
  print_banner("Serving runtime on this host (micro-batched, percentiles)");
  for (const bool use_packed : {false, true}) {
    ServerConfig scfg;
    scfg.max_batch = 32;
    scfg.max_delay_us = 200;
    InferenceServer server(use_packed ? packed_snap : float_snap,
                           pipeline.encoder_ptr(), scfg);
    WallTimer serve_timer;
    std::deque<std::future<ServeResult>> inflight;
    for (std::size_t i = 0; i < probe; ++i) {
      const auto row = probe_hv.row(i);
      inflight.push_back(server.submit({row.begin(), row.end()}));
      if (inflight.size() >= 32) {
        inflight.front().get();
        inflight.pop_front();
      }
    }
    while (!inflight.empty()) {
      inflight.front().get();
      inflight.pop_front();
    }
    const double serve_s = serve_timer.seconds();
    server.shutdown();
    const ServerStats stats = server.stats();
    std::printf("%-6s backend: %6.0f req/s   p50 %7.3f ms  p95 %7.3f ms  "
                "p99 %7.3f ms   (%llu batches, mean fill %.1f)\n",
                use_packed ? "packed" : "float",
                static_cast<double>(stats.completed) / serve_s,
                1e3 * stats.latency.p50_seconds,
                1e3 * stats.latency.p95_seconds,
                1e3 * stats.latency.p99_seconds,
                static_cast<unsigned long long>(stats.batches),
                stats.mean_batch_fill);
  }

  // --- projection onto the paper's edge platforms (simulated) ---
  print_banner("Projected edge latency & energy (SIMULATED device model)");
  TablePrinter table({"platform", "backend", "per-window latency (ms)",
                      "energy per window (mJ)", "windows/second"});
  for (const EdgePlatform& p : paper_edge_platforms()) {
    const struct {
      const char* backend;
      double infer_seconds;
    } projections[] = {{"float", infer_s}, {"packed", infer_packed_s}};
    for (const auto& v : projections) {
      const double total_s =
          (encode_s + v.infer_seconds) / static_cast<double>(probe);
      const double edge_s =
          p.project_latency(total_s, WorkloadKind::kHdcInference);
      table.row({p.name, v.backend, fmt(1e3 * edge_s, 2),
                 fmt(1e3 * p.project_energy(total_s,
                                            WorkloadKind::kHdcInference),
                     2),
                 fmt(1.0 / edge_s, 0)});
    }
  }
  table.print();
  std::printf("\nA PAMAP2 window spans %.2f s of signal, so real-time factor "
              ">> 1 on both devices.\n",
              static_cast<double>(raw.steps()) / spec.sample_rate_hz);
  return 0;
}
