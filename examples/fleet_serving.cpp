// Fleet serving: many tenants, one process — registry + router end to end.
//
// A deployment is rarely one model: per-user/per-cohort .smore artifacts
// share a machine whose memory cannot hold them all. This example walks the
// multi-tenant layer (DESIGN.md §12) the way an operator meets it:
//   1. train THREE distinct tenant pipelines and deploy each as
//      <dir>/<tenant>.smore — the registry's directory layout;
//   2. boot a ModelRegistry budgeted for TWO resident models behind a
//      MultiTenantServer (fair mode) and watch the cold-start → warm
//      latency drop as lazy loads cache;
//   3. touch the third tenant: the LRU tenant is evicted to fit the
//      budget, transparently reloaded on its next request, and every
//      response stays correct throughout;
//   4. flood one tenant past its in-flight quota with try_submit: the
//      flooder is shed with kShedTenantQuota while another tenant's
//      traffic is still admitted untouched;
//   5. shut down gracefully and read the per-tenant scoreboard.
//
//   ./build/example_fleet_serving --dir=/tmp/smore_fleet

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace smore;
  using Clock = std::chrono::steady_clock;

  CliParser cli("SMORE fleet serving: model registry (lazy load, LRU "
                "budget) + tenant-fair multi-tenant router.");
  cli.flag_string("dir", "/tmp/smore_fleet", "artifact directory")
      .flag_string("metrics-out", "",
                   "write the telemetry JSON snapshot here at exit (render "
                   "with tool_fleet_top --file=<path> --once)")
      .flag_int("dim", 1024, "hyperdimension")
      .flag_int("seed", 7, "base seed");
  if (!cli.parse(argc, argv)) return 1;
  const auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string dir = cli.get_string("dir");
  const std::string metrics_out = cli.get_string("metrics-out");

  // 1. Three tenants, three genuinely different models (different cohort
  // data AND different encoder seeds), one artifact each.
  std::filesystem::create_directories(dir);
  const std::vector<std::string> tenants{"cohort-a", "cohort-b", "cohort-c"};
  std::vector<HvDataset> queries;     // each tenant's own encoded windows
  std::vector<std::vector<int>> want; // ...and its model's direct labels
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const WindowDataset windows = generate_dataset(examples::demo_spec(
        tenants[t], /*activities=*/5, /*subjects=*/3, /*channels=*/6,
        /*window_steps=*/64, /*windows_per_subject=*/40,
        /*domain_shift=*/0.6, seed + t));
    Pipeline pipeline(examples::make_encoder(dim, seed + 100 * (t + 1)),
                      windows.num_classes());
    pipeline.fit(windows);
    pipeline.quantize();
    pipeline.calibrate(windows, 0.05);
    pipeline.save(dir + "/" + tenants[t] + ".smore");
    queries.push_back(pipeline.encode(windows));
    // The serving snapshot prefers the packed backend (the artifact is
    // quantized), so the ground truth for "same answer" is packed too.
    want.push_back(pipeline.predict_batch(windows, ServeBackend::kPacked));
  }
  std::printf("[deploy]   %zu artifacts in %s (d=%zu)\n", tenants.size(),
              dir.c_str(), dim);

  // 2. Registry budgeted for TWO resident models; fair router on top.
  std::size_t per_model;
  {
    std::ifstream in(dir + "/" + tenants[0] + ".smore", std::ios::binary);
    per_model = snapshot_resident_bytes(*ModelSnapshot::from_artifact(in, 1));
  }
  // One telemetry hub shared by registry AND router: loads, evictions,
  // per-tenant latency, and shed events all land in one exportable snapshot.
  const auto hub = obs::Telemetry::make();
  RegistryConfig rc;
  rc.byte_budget = 2 * per_model + per_model / 2;
  rc.telemetry = hub;
  auto registry = std::make_shared<ModelRegistry>(
      ModelRegistry::directory_source(dir), rc);
  MultiTenantConfig mc;
  mc.tenant_inflight_quota = 8;
  mc.telemetry = hub;
  MultiTenantServer server(registry, mc);
  std::printf("[boot]     budget %.0f KiB (~2 of %zu models, %.0f KiB "
              "each): residency is a cache, not a boot step\n",
              static_cast<double>(rc.byte_budget) / 1024.0, tenants.size(),
              static_cast<double>(per_model) / 1024.0);

  auto one = [&](std::size_t t, std::size_t i) {
    const auto row = queries[t].row(i);
    const auto start = Clock::now();
    const ServeResult r =
        server.submit(tenants[t], {row.begin(), row.end()}).get();
    const double ms = 1e-3 * static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start).count());
    return std::pair<ServeResult, double>(r, ms);
  };

  // Cold vs warm on the first two tenants (the budget holds both).
  for (std::size_t t = 0; t < 2; ++t) {
    const auto cold = one(t, 0);
    const auto warm = one(t, 1);
    std::printf("[%s] cold %6.2f ms (lazy artifact load) → warm %6.2f ms; "
                "labels match direct predict: %s\n",
                tenants[t].c_str(), cold.second, warm.second,
                (cold.first.label == want[t][0] &&
                 warm.first.label == want[t][1]) ? "yes" : "NO");
  }

  // 3. Third tenant overflows the budget: LRU (cohort-a) is evicted...
  const auto c = one(2, 0);
  std::printf("[%s] cold %6.2f ms → evicted the LRU tenant "
              "(resident %llu/%zu, evictions %llu)\n",
              tenants[2].c_str(), c.second,
              static_cast<unsigned long long>(
                  registry->stats().resident_tenants),
              tenants.size(),
              static_cast<unsigned long long>(registry->stats().evictions));
  // ...and the evicted tenant transparently reloads on its next request.
  const auto back = one(0, 2);
  std::printf("[%s] back %6.2f ms (reloaded on demand, label %s)\n",
              tenants[0].c_str(), back.second,
              back.first.label == want[0][2] ? "correct" : "WRONG");

  // 4. Admission control: flood cohort-b past its in-flight quota.
  std::size_t admitted = 0, shed = 0;
  std::vector<std::future<ServeResult>> inflight;
  for (std::size_t i = 0; i < 64; ++i) {
    ServeStatus reason{};
    auto fut = server.try_submit(
        tenants[1],
        {queries[1].row(i % queries[1].size()).begin(),
         queries[1].row(i % queries[1].size()).end()},
        &reason);
    if (fut.has_value()) {
      ++admitted;
      inflight.push_back(std::move(*fut));
    } else if (reason == ServeStatus::kShedTenantQuota) {
      ++shed;
    }
  }
  // The fleet is NOT full — another tenant's request sails through.
  const auto other = one(2, 1);
  for (auto& f : inflight) (void)f.get();
  std::printf("[fairness] flooded %s with 64 try_submits: %zu admitted, "
              "%zu shed (quota %zu) — while %s served in %5.2f ms\n",
              tenants[1].c_str(), admitted, shed, mc.tenant_inflight_quota,
              tenants[2].c_str(), other.second);

  // 5. Graceful drain, then the per-tenant scoreboard.
  server.shutdown();
  std::printf("[stats]    tenant        served  shed   p95 ms   loads=%llu "
              "evictions=%llu\n",
              static_cast<unsigned long long>(registry->stats().loads),
              static_cast<unsigned long long>(registry->stats().evictions));
  for (const TenantServerStats& t : server.tenant_stats()) {
    std::printf("           %-12s %6llu %5llu %8.2f\n", t.tenant.c_str(),
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.shed_tenant_quota),
                1e3 * t.latency.quantile(0.95));
  }
  if (!metrics_out.empty()) {
    if (obs::write_file_atomic(metrics_out, obs::snapshot_json_text(*hub))) {
      std::printf("[metrics]  snapshot → %s  (render: ./build/tool_fleet_top "
                  "--file=%s --once)\n",
                  metrics_out.c_str(), metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}
