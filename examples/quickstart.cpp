// Quickstart: the complete SMORE pipeline in ~60 lines.
//
//   1. get multi-sensor time-series windows from several source domains
//      (here: a small synthetic activity-recognition dataset);
//   2. encode them into hyperspace with the multi-sensor encoder (Sec 3.3);
//   3. train SMORE (per-domain models + domain descriptors, Sec 3.4-3.5);
//   4. classify windows from an UNSEEN domain — SMORE detects them as
//      out-of-distribution and adapts its test-time model (Sec 3.6).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/smore.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"

int main() {
  using namespace smore;

  // 1. A small dataset: 5 activities, 4 subjects (= 4 domains), 3 sensors.
  SyntheticSpec spec;
  spec.name = "quickstart";
  spec.activities = 5;
  spec.subjects = 4;
  spec.subject_to_domain = {0, 1, 2, 3};
  spec.channels = 3;
  spec.window_steps = 64;
  spec.sample_rate_hz = 50.0;
  spec.domain_counts = {120, 120, 120, 120};
  spec.domain_shift = 1.0;
  spec.seed = 42;
  const WindowDataset windows = generate_dataset(spec);
  std::printf("dataset: %zu windows, %d classes, %d domains\n", windows.size(),
              windows.num_classes(), windows.num_domains());

  // 2. Encode every window into a d-dimensional hypervector.
  EncoderConfig encoder_config;
  encoder_config.dim = 2048;
  const MultiSensorEncoder encoder(encoder_config);
  const HvDataset encoded = encoder.encode_dataset(windows);

  // 3. Leave domain 3 out, train SMORE on the remaining three domains.
  const Split fold = lodo_split(windows, /*held_out_domain=*/3);
  const HvDataset train = encoded.select(fold.train);
  const HvDataset test = encoded.select(fold.test);

  SmoreModel model(windows.num_classes(), encoder_config.dim);
  model.fit(train);
  std::printf("trained %zu domain-specific models + descriptors\n",
              model.num_domains());

  // 4. Classify the held-out domain; inspect one prediction in detail.
  const SmorePrediction detail = model.predict_detail(test.row(0));
  std::printf("first test window: predicted class %d (true %d), %s, "
              "max domain similarity %.3f\n",
              detail.label, test.label(0),
              detail.is_ood ? "OOD -> full weighted ensemble"
                            : "in-distribution -> gated ensemble",
              detail.max_similarity);

  std::printf("held-out-domain accuracy: %.1f%% (OOD rate %.0f%%)\n",
              100.0 * model.accuracy(test), 100.0 * model.ood_rate(test));
  return 0;
}
