// Quickstart: the complete SMORE pipeline — train, ship, serve — in a few
// calls on the Pipeline facade.
//
//   1. get multi-sensor time-series windows from several source domains
//      (here: a small synthetic activity-recognition dataset);
//   2. fit a Pipeline: it encodes into hyperspace (Sec 3.3) and trains the
//      per-domain models + descriptors (Sec 3.4-3.5) behind one call;
//   3. save ONE artifact (encoder config+seed, model, calibration) and load
//      it back the way a fresh serving process would;
//   4. classify windows from an UNSEEN domain — SMORE detects them as
//      out-of-distribution and adapts its test-time model (Sec 3.6).
//
// Build & run:  ./build/example_quickstart

#include <cstdio>
#include <sstream>

#include "core/pipeline.hpp"
#include "common.hpp"

int main() {
  using namespace smore;

  // 1. A small dataset: 5 activities, 4 subjects (= 4 domains), 3 sensors.
  const WindowDataset windows = generate_dataset(
      examples::demo_spec("quickstart", /*activities=*/5, /*subjects=*/4,
                          /*channels=*/3, /*window_steps=*/64,
                          /*windows_per_subject=*/120, /*domain_shift=*/1.0,
                          /*seed=*/42));
  std::printf("dataset: %zu windows, %d classes, %d domains\n", windows.size(),
              windows.num_classes(), windows.num_domains());

  // 2. Leave domain 3 out, fit the pipeline on the remaining three domains.
  const auto fold = examples::lodo_windows(windows, /*held_out_domain=*/3);
  Pipeline pipeline(examples::make_encoder(/*dim=*/2048),
                    windows.num_classes());
  pipeline.fit(fold.train);
  std::printf("trained %zu domain-specific models + descriptors\n",
              pipeline.num_domains());

  // 3. Ship it: ONE artifact holds the encoder (config + seed), the trained
  //    model, and the calibration — then boot a "fresh process" from it.
  std::stringstream artifact;  // stands in for a .smore file on disk
  pipeline.save(artifact);
  const Pipeline deployed = Pipeline::load(artifact);
  std::printf("artifact round-trip: %zu bytes, d=%zu, %zu domains\n",
              static_cast<std::size_t>(artifact.str().size()), deployed.dim(),
              deployed.num_domains());

  // 4. Classify the held-out domain with the DEPLOYED pipeline; inspect one
  //    prediction in detail.
  const SmorePrediction detail = deployed.predict_detail(fold.test[0]);
  std::printf("first test window: predicted class %d (true %d), %s, "
              "max domain similarity %.3f\n",
              detail.label, fold.test[0].label(),
              detail.is_ood ? "OOD -> full weighted ensemble"
                            : "in-distribution -> gated ensemble",
              detail.max_similarity);

  const SmoreEvaluation eval = deployed.evaluate(fold.test);
  std::printf("held-out-domain accuracy: %.1f%% (OOD rate %.0f%%)\n",
              100.0 * eval.accuracy, 100.0 * eval.ood_rate);
  return 0;
}
