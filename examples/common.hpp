#pragma once
// Shared example scaffolding: the synthetic-spec, encoder, and LODO-split
// boilerplate that every example needs before it can show its actual point.
// Examples include this; library code never does.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "data/timeseries.hpp"
#include "hdc/encoder.hpp"

namespace smore::examples {

/// A small activity-recognition demo population: `subjects` subjects (one
/// domain each, identity mapping), equal window counts per subject, 50 Hz.
inline SyntheticSpec demo_spec(std::string name, int activities, int subjects,
                               std::size_t channels, std::size_t window_steps,
                               std::size_t windows_per_subject,
                               double domain_shift, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = std::move(name);
  spec.activities = activities;
  spec.subjects = subjects;
  spec.subject_to_domain.resize(static_cast<std::size_t>(subjects));
  for (int s = 0; s < subjects; ++s) {
    spec.subject_to_domain[static_cast<std::size_t>(s)] = s;
  }
  spec.channels = channels;
  spec.window_steps = window_steps;
  spec.sample_rate_hz = 50.0;
  spec.domain_counts.assign(static_cast<std::size_t>(subjects),
                            windows_per_subject);
  spec.domain_shift = domain_shift;
  spec.seed = seed;
  return spec;
}

/// The multi-sensor encoder every example deploys (shared_ptr because the
/// Pipeline and serving snapshots share ownership of it).
inline std::shared_ptr<const MultiSensorEncoder> make_encoder(
    std::size_t dim, std::uint64_t seed = 0x5304e) {
  EncoderConfig config;
  config.dim = dim;
  config.seed = seed;
  return std::make_shared<const MultiSensorEncoder>(config);
}

/// One leave-one-domain-out fold materialized as window datasets (what
/// Pipeline::fit/evaluate consume).
struct LodoWindows {
  WindowDataset train;
  WindowDataset test;
};

inline LodoWindows lodo_windows(const WindowDataset& all,
                                int held_out_domain) {
  const Split fold = lodo_split(all, held_out_domain);
  return {take(all, fold.train), take(all, fold.test)};
}

}  // namespace smore::examples
