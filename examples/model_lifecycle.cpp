// Model lifecycle: train → calibrate → quantize → save ONE artifact →
// reload → verify, on the Pipeline facade.
//
// Walks the full production lifecycle of a SMORE deployment:
//   1. fit a Pipeline on source domains, calibrate δ* at a 5% FP budget,
//      and sign-quantize the packed edge backend (DESIGN.md §8);
//   2. persist EVERYTHING — encoder config+seed, float model, calibration,
//      packed model — as one versioned .smore artifact (DESIGN.md §10) and
//      reload it the way a gateway process would at boot;
//   3. verify the reloaded pipeline is bit-identical on BOTH backends (the
//      artifact acceptance bar: no retraining, no out-of-band state);
//   4. report the float-vs-packed footprint/accuracy trade, per domain and
//      for the full ensemble, through the low-level classes the facade
//      deliberately keeps public.
//
//   ./build/example_model_lifecycle --model=/tmp/smore.smore

#include <cstdio>

#include "core/pipeline.hpp"
#include "hdc/binary.hpp"
#include "hdc/ops_binary.hpp"
#include "common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace smore;

  CliParser cli("SMORE model lifecycle: train, calibrate, quantize, save, "
                "reload, verify.");
  cli.flag_string("model", "/tmp/smore_model.smore", "artifact file path")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_double("scale", 0.02, "dataset scale")
      .flag_int("seed", 1, "seed");
  if (!cli.parse(argc, argv)) return 1;
  const auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string path = cli.get_string("model");

  // 1. Train on a USC-HAD-like problem with the last domain held out.
  const WindowDataset raw = generate_dataset(uschad_spec(
      cli.get_double("scale"), seed));
  const auto fold = examples::lodo_windows(raw, raw.num_domains() - 1);

  Pipeline pipeline(examples::make_encoder(dim, seed), raw.num_classes());
  pipeline.fit(fold.train);
  pipeline.quantize();
  // After quantize so BOTH thresholds are calibrated: cosine and Hamming
  // similarities live on different scales, and calibrate() derives each
  // backend's δ* from its own similarity distribution.
  const double delta = pipeline.calibrate(fold.train, 0.05);
  const SmoreEvaluation float_eval = pipeline.evaluate(fold.test);
  std::printf("[train]    %zu domains, held-out accuracy %.2f%%, calibrated "
              "delta*=%.3f, quantized\n",
              pipeline.num_domains(), 100 * float_eval.accuracy, delta);

  // 2. One artifact: encoder + model + calibration + packed backend.
  pipeline.save(path);
  std::printf("[save]     %s\n", path.c_str());
  const Pipeline reloaded = Pipeline::load(path);

  // 3. Bit-identical on both backends — compare every per-query output of
  //    the batched Algorithm 1 pass, not just the accuracy.
  std::size_t mismatches = 0;
  for (const ServeBackend backend : {ServeBackend::kFloat,
                                     ServeBackend::kPacked}) {
    const SmoreBatchResult a = pipeline.predict_batch_full(fold.test, backend);
    const SmoreBatchResult b = reloaded.predict_batch_full(fold.test, backend);
    for (std::size_t i = 0; i < a.labels.size(); ++i) {
      mismatches += a.labels[i] != b.labels[i] || a.ood[i] != b.ood[i] ||
                            a.max_similarity[i] != b.max_similarity[i]
                        ? 1
                        : 0;
    }
  }
  std::printf("[reload]   accuracy %.2f%%, prediction mismatches vs original "
              "across both backends: %zu (must be 0)\n",
              100 * reloaded.evaluate(fold.test).accuracy, mismatches);

  // 4. The footprint/accuracy trade. The facade keeps the low-level classes
  //    public: per-domain models quantize individually through BinaryModel,
  //    the full ensemble through the pipeline's packed backend.
  const HvDataset test = pipeline.encode(fold.test);
  const SmoreModel& model = pipeline.model();
  const BitMatrix test_bits = ops::sign_pack_matrix(test.view());
  std::printf("[binarize] per-domain models, sign-quantized:\n");
  for (std::size_t k = 0; k < model.num_domains(); ++k) {
    const OnlineHDClassifier& domain_model = model.domain_model(k);
    const BinaryModel binary(domain_model);
    const double full = domain_model.accuracy(test);
    const double quant = binary.evaluate(test_bits.view(), test.labels());
    const std::size_t full_bytes = static_cast<std::size_t>(
        domain_model.num_classes()) * domain_model.dim() * sizeof(float);
    std::printf("  domain %zu: %6.1f KiB -> %5.1f KiB (%.0fx), held-out acc "
                "%.1f%% -> %.1f%%\n",
                k, full_bytes / 1024.0,
                static_cast<double>(binary.footprint_bytes()) / 1024.0,
                static_cast<double>(full_bytes) /
                    static_cast<double>(binary.footprint_bytes()),
                100 * full, 100 * quant);
  }

  const SmoreEvaluation quant_eval =
      pipeline.evaluate(fold.test, ServeBackend::kPacked);
  std::printf("[binarize] full SMORE ensemble: %6.1f KiB -> %5.1f KiB, "
              "held-out acc %.1f%% -> %.1f%% (ood rate %.1f%%, packed "
              "delta*=%.3f)\n",
              static_cast<double>(model.footprint_bytes()) / 1024.0,
              static_cast<double>(pipeline.packed()->footprint_bytes()) /
                  1024.0,
              100 * float_eval.accuracy, 100 * quant_eval.accuracy,
              100 * quant_eval.ood_rate, pipeline.packed()->delta_star());
  return mismatches == 0 ? 0 : 1;
}
