// Model lifecycle: train → save → reload → serve, plus binarized deployment.
//
// Walks the full production lifecycle of a SMORE model:
//   1. train on source domains and persist the model to disk;
//   2. reload it (as a gateway process would at boot) and verify the
//      predictions are bit-identical;
//   3. sign-quantize for MCU-class deployment — each per-domain model and
//      the full SMORE ensemble — through the packed binary backend, and
//      report the footprint/accuracy trade (extension beyond the paper,
//      DESIGN.md §8). The test block is quantized once (ops::sign_pack_matrix)
//      and every quantized model scores it through the blocked Hamming
//      kernels; footprints come straight from the BitMatrix storage.
//
//   ./build/examples/model_lifecycle --model=/tmp/smore.bin

#include <cstdio>
#include <fstream>

#include "core/binary_smore.hpp"
#include "core/smore.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "hdc/binary.hpp"
#include "hdc/encoder.hpp"
#include "hdc/ops_binary.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace smore;

  CliParser cli("SMORE model lifecycle: train, save, reload, binarize.");
  cli.flag_string("model", "/tmp/smore_model.bin", "model file path")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_double("scale", 0.02, "dataset scale")
      .flag_int("seed", 1, "seed");
  if (!cli.parse(argc, argv)) return 1;
  const auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  const std::string path = cli.get_string("model");

  // Train on a USC-HAD-like problem with one domain held out.
  const SyntheticSpec spec =
      uschad_spec(cli.get_double("scale"),
                  static_cast<std::uint64_t>(cli.get_int("seed")));
  const WindowDataset raw = generate_dataset(spec);
  EncoderConfig ec;
  ec.dim = dim;
  const MultiSensorEncoder encoder(ec);
  const HvDataset encoded = encoder.encode_dataset(raw);
  const Split fold = lodo_split(raw, raw.num_domains() - 1);
  const HvDataset train = encoded.select(fold.train);
  const HvDataset test = encoded.select(fold.test);

  SmoreModel model(raw.num_classes(), dim);
  model.fit(train);
  const double acc_before = model.accuracy(test);
  std::printf("[train]  %zu domains, held-out accuracy %.2f%%\n",
              model.num_domains(), 100 * acc_before);

  // Save.
  {
    std::ofstream out(path, std::ios::binary);
    model.save(out);
  }
  std::printf("[save]   %s\n", path.c_str());

  // Reload and verify bit-identical behaviour.
  std::ifstream in(path, std::ios::binary);
  const SmoreModel reloaded = SmoreModel::load(in);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    mismatches +=
        reloaded.predict(test.row(i)) != model.predict(test.row(i)) ? 1 : 0;
  }
  std::printf("[reload] accuracy %.2f%%, prediction mismatches vs original: "
              "%zu (must be 0)\n",
              100 * reloaded.accuracy(test), mismatches);

  // Binarize for MCU-class deployment: quantize the test block once, score
  // every quantized model on it through the batched Hamming kernels.
  const BitMatrix test_bits = ops::sign_pack_matrix(test.view());
  std::printf("[binarize] test block packed: %zu x %zu floats (%.1f KiB) -> "
              "%zu x %zu words (%.1f KiB)\n",
              test.size(), test.dim(),
              static_cast<double>(test.size() * test.dim() * sizeof(float)) /
                  1024.0,
              test_bits.rows(), test_bits.words_per_row(),
              static_cast<double>(test_bits.bytes()) / 1024.0);
  std::printf("[binarize] per-domain models, sign-quantized:\n");
  for (std::size_t k = 0; k < model.num_domains(); ++k) {
    const OnlineHDClassifier& domain_model = model.domain_model(k);
    const BinaryModel binary(domain_model);
    const double full = domain_model.accuracy(test);
    const double quant = binary.evaluate(test_bits.view(), test.labels());
    const std::size_t full_bytes = static_cast<std::size_t>(
        domain_model.num_classes()) * domain_model.dim() * sizeof(float);
    std::printf("  domain %zu: %6.1f KiB -> %5.1f KiB (%.0fx), held-out acc "
                "%.1f%% -> %.1f%%\n",
                k, full_bytes / 1024.0,
                static_cast<double>(binary.footprint_bytes()) / 1024.0,
                static_cast<double>(full_bytes) /
                    static_cast<double>(binary.footprint_bytes()),
                100 * full, 100 * quant);
  }

  // The full quantized ensemble: descriptors + class banks + test-time
  // ensembling, all on Hamming similarity.
  BinarySmoreModel binary_smore(model);
  binary_smore.calibrate_delta_star(train, 0.05);
  const SmoreEvaluation quant_eval =
      binary_smore.evaluate(test_bits.view(), test.labels());
  const std::size_t smore_float_bytes = model.footprint_bytes();
  std::printf("[binarize] full SMORE ensemble: %6.1f KiB -> %5.1f KiB, "
              "held-out acc %.1f%% -> %.1f%% (ood rate %.1f%%, "
              "calibrated delta*=%.3f)\n",
              static_cast<double>(smore_float_bytes) / 1024.0,
              static_cast<double>(binary_smore.footprint_bytes()) / 1024.0,
              100 * acc_before, 100 * quant_eval.accuracy,
              100 * quant_eval.ood_rate, binary_smore.delta_star());
  return mismatches == 0 ? 0 : 1;
}
