// Model lifecycle: train → save → reload → serve, plus binarized deployment.
//
// Walks the full production lifecycle of a SMORE model:
//   1. train on source domains and persist the model to disk;
//   2. reload it (as a gateway process would at boot) and verify the
//      predictions are bit-identical;
//   3. sign-quantize the per-domain models for MCU-class deployment and
//      report the footprint/accuracy trade (extension beyond the paper,
//      DESIGN.md §6).
//
//   ./build/examples/model_lifecycle --model=/tmp/smore.bin

#include <cstdio>
#include <fstream>

#include "core/smore.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "hdc/binary.hpp"
#include "hdc/encoder.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace smore;

  CliParser cli("SMORE model lifecycle: train, save, reload, binarize.");
  cli.flag_string("model", "/tmp/smore_model.bin", "model file path")
      .flag_int("dim", 2048, "hyperdimension")
      .flag_double("scale", 0.02, "dataset scale")
      .flag_int("seed", 1, "seed");
  if (!cli.parse(argc, argv)) return 1;
  const auto dim = static_cast<std::size_t>(cli.get_int("dim"));
  const std::string path = cli.get_string("model");

  // Train on a USC-HAD-like problem with one domain held out.
  const SyntheticSpec spec =
      uschad_spec(cli.get_double("scale"),
                  static_cast<std::uint64_t>(cli.get_int("seed")));
  const WindowDataset raw = generate_dataset(spec);
  EncoderConfig ec;
  ec.dim = dim;
  const MultiSensorEncoder encoder(ec);
  const HvDataset encoded = encoder.encode_dataset(raw);
  const Split fold = lodo_split(raw, raw.num_domains() - 1);
  const HvDataset train = encoded.select(fold.train);
  const HvDataset test = encoded.select(fold.test);

  SmoreModel model(raw.num_classes(), dim);
  model.fit(train);
  const double acc_before = model.accuracy(test);
  std::printf("[train]  %zu domains, held-out accuracy %.2f%%\n",
              model.num_domains(), 100 * acc_before);

  // Save.
  {
    std::ofstream out(path, std::ios::binary);
    model.save(out);
  }
  std::printf("[save]   %s\n", path.c_str());

  // Reload and verify bit-identical behaviour.
  std::ifstream in(path, std::ios::binary);
  const SmoreModel reloaded = SmoreModel::load(in);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    mismatches +=
        reloaded.predict(test.row(i)) != model.predict(test.row(i)) ? 1 : 0;
  }
  std::printf("[reload] accuracy %.2f%%, prediction mismatches vs original: "
              "%zu (must be 0)\n",
              100 * reloaded.accuracy(test), mismatches);

  // Binarize each domain model for MCU-class deployment.
  std::printf("[binarize] per-domain models, sign-quantized:\n");
  for (std::size_t k = 0; k < model.num_domains(); ++k) {
    const OnlineHDClassifier& domain_model = model.domain_model(k);
    const BinaryModel binary(domain_model);
    const double full = domain_model.accuracy(test);
    const double quant = binary.accuracy(test);
    const std::size_t full_bytes = static_cast<std::size_t>(
        domain_model.num_classes()) * domain_model.dim() * sizeof(float);
    std::printf("  domain %zu: %6.1f KiB -> %5.1f KiB (32x), held-out acc "
                "%.1f%% -> %.1f%%\n",
                k, full_bytes / 1024.0, binary.footprint_bytes() / 1024.0,
                100 * full, 100 * quant);
  }
  return mismatches == 0 ? 0 : 1;
}
